//! The sharded in-memory claim store.
//!
//! Triples land in one of `N` shards chosen by hashing the **entity**
//! name. Partitioning by entity (rather than by the full fact key) keeps
//! every fact of an entity — and therefore the entity's whole
//! mutual-exclusion group — inside one shard, so each shard can generate
//! Definition-3 negative claims locally: a source covers an entity iff it
//! asserted at least one triple about it, and that coverage is never
//! split across shards.
//!
//! Each shard is an append log of deduplicated rows plus incrementally
//! maintained coverage indexes; [`ShardedStore::full_databases`] rebuilds
//! each shard's CSR [`ClaimDb`] from the log when the refit daemon asks
//! for it, and [`ShardedStore::shard_databases_since`] extracts only the
//! **delta** — facts touched since a fold watermark — so an incremental
//! refit costs `O(Δ)` instead of `O(store)`. **Source ids are global** —
//! interned once in [`ShardedStore`]-level state — because source quality
//! is the cross-shard signal the whole model exists to learn; every shard
//! database is emitted over the full global source-id space so their
//! expected counts can be folded into one accumulator.
//!
//! Delta tracking: every accepted triple gets a monotonically increasing
//! sequence number (its 1-based position in the replay log, so replaying
//! a snapshot reproduces the numbering exactly), and each shard keeps a
//! dirty map from local fact id to the last sequence that changed the
//! fact's Definition-3 claim row. Two kinds of ingest dirty a fact:
//!
//! * a triple asserting the fact itself (a negative row flips positive,
//!   or a brand-new fact appears), and
//! * a triple from a source that **newly covers the fact's entity** —
//!   Definition 3 then adds a retroactive negative row to *every* fact of
//!   that entity, so they are all marked dirty even though their own
//!   triples are old.
//!
//! Lock discipline: the replay `log` (Mutex) is the outermost **ingest-
//! order lock** — ingest holds it from before any id is minted until the
//! log entry is appended, then `sources` (RwLock), the shard (Mutex), and
//! the fact `registry` (RwLock) nest inside it in that order. Holding the
//! log across the whole ingest is what makes id minting and log append
//! one atomic step: without it, two racing ingests on different shards
//! could mint source/fact ids in one order and append log entries in the
//! other, and a snapshot replay (which is sequential) would then assign
//! different ids than the live server handed out. Readers that need the
//! registry copy the entry out and release it *before* touching a shard,
//! so no lock cycle exists.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, RwLock};

use ltm_core::{RealClaim, RealClaimDb};
use ltm_model::interner::Interner;
use ltm_model::{AttrId, Claim, ClaimDb, EntityId, Fact, FactId, SourceId};

use crate::sync::{LockExt, RwLockExt};

/// One accepted row of the replay log: the triple plus the optional real
/// value carried by valued ([`crate::model::ModelKind::RealValued`])
/// domains. Replaying the log through a fresh store with the same shard
/// count reproduces every id assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct LogRecord {
    /// Entity name.
    pub entity: String,
    /// Attribute name.
    pub attr: String,
    /// Source name.
    pub source: String,
    /// Claim value (`None` for boolean-domain rows).
    pub value: Option<f64>,
}

/// Where a globally-numbered fact lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FactLocation {
    /// Shard index.
    pub shard: usize,
    /// Fact index local to that shard's [`ClaimDb`].
    pub local: u32,
}

/// Outcome of ingesting one triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestOutcome {
    /// The triple introduced a brand-new fact (global id attached).
    NewFact(u64),
    /// The triple added a new positive row to an existing fact.
    NewRow(u64),
    /// The triple was already present (Definition 1 deduplication).
    Duplicate(u64),
}

impl IngestOutcome {
    /// The global fact id the triple resolved to.
    pub fn fact_id(self) -> u64 {
        match self {
            IngestOutcome::NewFact(id)
            | IngestOutcome::NewRow(id)
            | IngestOutcome::Duplicate(id) => id,
        }
    }

    /// Whether the triple was accepted (not a duplicate).
    pub fn accepted(self) -> bool {
        !matches!(self, IngestOutcome::Duplicate(_))
    }
}

/// The journal callback [`ShardedStore::ingest_batch`] runs under the
/// ingest-order lock: `(first_seq, accepted_rows)` → buffered write.
pub type JournalFn<'a> = &'a (dyn Fn(u64, &[LogRecord]) -> std::io::Result<()> + 'a);

/// Outcome of one batch ingest ([`ShardedStore::ingest_batch`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Rows accepted (not duplicates).
    pub accepted: u64,
    /// Rows rejected as Definition-1 duplicates.
    pub duplicates: u64,
    /// Accepted rows that introduced a brand-new fact.
    pub new_facts: u64,
    /// Sequence number of the first accepted row (the batch's accepted
    /// rows occupy `first_seq .. first_seq + accepted` contiguously).
    /// Meaningless when `accepted == 0`.
    pub first_seq: u64,
}

/// A resolved fact: names plus its current claim list (global source ids).
#[derive(Debug, Clone)]
pub struct FactView {
    /// Global fact id.
    pub id: u64,
    /// Entity name.
    pub entity: String,
    /// Attribute name.
    pub attr: String,
    /// One claim per source covering the entity, in ascending source id.
    pub claims: Vec<(SourceId, bool)>,
}

/// A resolved fact in a valued (real-valued) domain: like [`FactView`]
/// but claims carry their real value — a Definition-3 negative row reads
/// `0.0`, an asserted row without an explicit value reads `1.0`.
#[derive(Debug, Clone)]
pub struct RealFactView {
    /// Global fact id.
    pub id: u64,
    /// Entity name.
    pub entity: String,
    /// Attribute name.
    pub attr: String,
    /// One `(source, value)` claim per source covering the entity, in
    /// ascending source id.
    pub claims: Vec<(SourceId, f64)>,
}

/// Aggregate store statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Shard count.
    pub shards: usize,
    /// Distinct facts across all shards.
    pub facts: usize,
    /// Claims (positive + generated negative) across all shards.
    pub claims: usize,
    /// Positive claims (accepted raw rows).
    pub positive_claims: usize,
    /// Global distinct sources.
    pub sources: usize,
    /// Accepted rows since the last [`ShardedStore::consume_pending`].
    pub pending: usize,
    /// Lifetime rows rejected as exact `(entity, attr, source)`
    /// duplicates (the ingest dedup counter).
    pub duplicate_rows: u64,
}

/// One extraction from the store: per-shard batches over the global
/// source-id space, plus the fold watermark the batches cover. Returned
/// by the full rebuilds ([`ShardedStore::full_databases`],
/// [`ShardedStore::full_real_databases`]) and the delta paths
/// ([`ShardedStore::shard_databases_since`],
/// [`ShardedStore::real_databases_since`]); the batch type is
/// [`ClaimDb`] for boolean extractions and [`RealClaimDb`] for valued
/// ones.
#[derive(Debug)]
pub struct StoreDeltaOf<B> {
    /// Per-shard batches; shards contributing no facts are omitted.
    pub batches: Vec<B>,
    /// Accepted-row sequence covered once these batches are folded — the
    /// caller's next `*_databases_since` watermark.
    pub watermark: u64,
    /// Facts contained in the batches.
    pub delta_facts: usize,
    /// Claims contained in the batches.
    pub delta_claims: usize,
    /// Claims the whole store implies (all shards, not just the delta).
    pub total_claims: usize,
}

/// Boolean extraction (CSR [`ClaimDb`] batches).
pub type StoreDelta = StoreDeltaOf<ClaimDb>;

/// Valued extraction ([`RealClaimDb`] batches).
pub type RealStoreDelta = StoreDeltaOf<RealClaimDb>;

/// One shard: a deduplicated row log with coverage indexes.
#[derive(Debug, Default)]
struct Shard {
    entities: Interner<EntityId>,
    attrs: Interner<AttrId>,
    /// Deduplication set over `(entity, attr, source)` (local entity/attr
    /// ids, global source id).
    rows: HashSet<(u32, u32, u32)>,
    /// Claim values by row, populated only for valued ingests
    /// ([`ShardedStore::ingest_valued`]). Definition-1 dedup applies to
    /// values too: the first accepted value wins, later re-assertions of
    /// the same triple are duplicates regardless of value.
    values: HashMap<(u32, u32, u32), f64>,
    /// `(entity, attr, global fact id)` per local fact, in creation order —
    /// local fact id is the index.
    facts: Vec<(u32, u32, u64)>,
    fact_index: HashMap<(u32, u32), u32>,
    /// Per local entity: sorted global source ids covering it.
    cover: Vec<Vec<u32>>,
    /// Per local entity: local fact ids, in creation order.
    entity_facts: Vec<Vec<u32>>,
    /// Local fact id → last accepted-row sequence that changed its
    /// Definition-3 claim row (directly or via retroactive coverage).
    /// Entries at or below the fold watermark are pruned on extraction.
    dirty: HashMap<u32, u64>,
    /// Running `Σ per entity: facts × covering sources`, maintained on
    /// ingest so the delta path reads it in O(1) under the shard lock
    /// instead of rescanning every entity per refit.
    claims: usize,
}

impl Shard {
    /// Claims of local fact `f` per Definition 3, ascending source id.
    fn claims_of(&self, f: u32) -> Vec<(SourceId, bool)> {
        // analyzer: allow(panic-index) -- f is a local fact id minted by this shard
        let (e, a, _) = self.facts[f as usize];
        // analyzer: allow(panic-index) -- cover is grown to every interned entity on ingest
        self.cover[e as usize]
            .iter()
            .map(|&s| (SourceId::new(s), self.rows.contains(&(e, a, s))))
            .collect()
    }

    /// The real value of row `(e, a, s)` under the valued-domain reading:
    /// a missing row (Definition-3 negative) is `0.0`, an asserted row
    /// without an explicit value is `1.0`.
    fn value_of(&self, e: u32, a: u32, s: u32) -> f64 {
        if self.rows.contains(&(e, a, s)) {
            self.values.get(&(e, a, s)).copied().unwrap_or(1.0)
        } else {
            0.0
        }
    }

    /// Valued claims of local fact `f`, ascending source id.
    fn real_claims_of(&self, f: u32) -> Vec<(SourceId, f64)> {
        // analyzer: allow(panic-index) -- f is a local fact id minted by this shard
        let (e, a, _) = self.facts[f as usize];
        // analyzer: allow(panic-index) -- cover is grown to every interned entity on ingest
        self.cover[e as usize]
            .iter()
            .map(|&s| (SourceId::new(s), self.value_of(e, a, s)))
            .collect()
    }

    /// Total claims the shard currently implies (Σ per entity:
    /// facts × covering sources) — an O(1) read of the counter ingest
    /// maintains.
    fn num_claims(&self) -> usize {
        self.claims
    }

    /// Rebuilds the shard as a CSR [`ClaimDb`] over `num_sources` global
    /// source ids.
    fn to_claim_db(&self, num_sources: usize) -> ClaimDb {
        let facts: Vec<Fact> = self
            .facts
            .iter()
            .map(|&(e, a, _)| Fact {
                entity: EntityId::new(e),
                attr: AttrId::new(a),
            })
            .collect();
        let mut claims = Vec::with_capacity(self.num_claims());
        for (f, &(e, a, _)) in self.facts.iter().enumerate() {
            // analyzer: allow(panic-index) -- cover is grown to every interned entity on ingest
            for &s in &self.cover[e as usize] {
                claims.push(Claim {
                    fact: FactId::from_usize(f),
                    source: SourceId::new(s),
                    observation: self.rows.contains(&(e, a, s)),
                });
            }
        }
        ClaimDb::from_parts(facts, claims, num_sources)
    }

    /// Rebuilds the shard as a [`RealClaimDb`] over `num_sources` global
    /// source ids (the valued-domain analogue of
    /// [`Shard::to_claim_db`]): every covering source contributes one
    /// valued claim per fact, negatives at `0.0`.
    fn to_real_claim_db(&self, num_sources: usize) -> RealClaimDb {
        let mut claims = Vec::with_capacity(self.num_claims());
        for (f, &(e, a, _)) in self.facts.iter().enumerate() {
            // analyzer: allow(panic-index) -- cover is grown to every interned entity on ingest
            for &s in &self.cover[e as usize] {
                claims.push(RealClaim {
                    fact: FactId::from_usize(f),
                    source: SourceId::new(s),
                    value: self.value_of(e, a, s),
                });
            }
        }
        RealClaimDb::new(self.facts.len(), num_sources, claims)
    }

    /// The local fact ids dirtied in the sequence window `(watermark,
    /// upto]`, sorted for a deterministic batch layout, or `None` when
    /// the window is clean.
    fn dirty_in_window(&self, watermark: u64, upto: u64) -> Option<Vec<u32>> {
        let mut selected: Vec<u32> = self
            .dirty
            .iter()
            .filter(|&(_, &seq)| seq > watermark && seq <= upto)
            .map(|(&f, _)| f)
            .collect();
        if selected.is_empty() {
            return None;
        }
        // Deterministic batch layout regardless of hash-map iteration.
        selected.sort_unstable();
        Some(selected)
    }

    /// Raw `(facts, claims)` parts for the local facts dirtied in the
    /// sequence window `(watermark, upto]`, or `None` when the window is
    /// clean. Claims use batch-local fact indices and global source ids;
    /// the caller builds the [`ClaimDb`] after releasing the shard lock
    /// (the CSR width must be read with no shard lock held — see
    /// [`ShardedStore::shard_databases_since`]).
    fn delta_parts(&self, watermark: u64, upto: u64) -> Option<(Vec<Fact>, Vec<Claim>)> {
        let selected = self.dirty_in_window(watermark, upto)?;
        let mut facts = Vec::with_capacity(selected.len());
        let mut claims = Vec::new();
        for (i, &lf) in selected.iter().enumerate() {
            // analyzer: allow(panic-index) -- dirty_in_window only yields local fact ids of this shard
            let (e, a, _) = self.facts[lf as usize];
            facts.push(Fact {
                entity: EntityId::new(e),
                attr: AttrId::new(a),
            });
            // analyzer: allow(panic-index) -- cover is grown to every interned entity on ingest
            for &s in &self.cover[e as usize] {
                claims.push(Claim {
                    fact: FactId::from_usize(i),
                    source: SourceId::new(s),
                    observation: self.rows.contains(&(e, a, s)),
                });
            }
        }
        Some((facts, claims))
    }

    /// Valued-domain [`Shard::delta_parts`]: `(fact count, claims)` for
    /// the dirty window, claims carrying real values.
    fn real_delta_parts(&self, watermark: u64, upto: u64) -> Option<(usize, Vec<RealClaim>)> {
        let selected = self.dirty_in_window(watermark, upto)?;
        let mut claims = Vec::new();
        for (i, &lf) in selected.iter().enumerate() {
            // analyzer: allow(panic-index) -- dirty_in_window only yields local fact ids of this shard
            let (e, a, _) = self.facts[lf as usize];
            // analyzer: allow(panic-index) -- cover is grown to every interned entity on ingest
            for &s in &self.cover[e as usize] {
                claims.push(RealClaim {
                    fact: FactId::from_usize(i),
                    source: SourceId::new(s),
                    value: self.value_of(e, a, s),
                });
            }
        }
        Some((selected.len(), claims))
    }
}

/// Hash-partitioned claim store. See the module docs for the sharding
/// scheme and lock discipline.
#[derive(Debug)]
pub struct ShardedStore {
    shards: Vec<Mutex<Shard>>,
    sources: RwLock<Interner<SourceId>>,
    registry: RwLock<Vec<FactLocation>>,
    /// Accepted rows in arrival order — replaying this log through a
    /// fresh store with the same shard count reproduces every id
    /// assignment (the snapshot-restore invariant). Doubles as the
    /// ingest-order lock: see the module docs.
    log: Mutex<Vec<LogRecord>>,
    pending: AtomicUsize,
    /// Mirror of `log.len()` maintained under the ingest-order lock, so
    /// extraction paths holding shard locks can read the accepted-row
    /// sequence without touching the log mutex (shard → log would invert
    /// the ingest lock order and deadlock).
    seq: AtomicU64,
    /// Lifetime count of rows rejected as exact duplicates, feeding the
    /// ingest dedup-rate in `/stats` and `/metrics`.
    duplicate_rows: AtomicU64,
}

impl ShardedStore {
    /// Creates an empty store with `shards` partitions.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        Self {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            sources: RwLock::new(Interner::new()),
            registry: RwLock::new(Vec::new()),
            log: Mutex::new(Vec::new()),
            pending: AtomicUsize::new(0),
            seq: AtomicU64::new(0),
            duplicate_rows: AtomicU64::new(0),
        }
    }

    /// Shard index for an entity name.
    fn shard_of(&self, entity: &str) -> usize {
        let mut h = DefaultHasher::new();
        entity.hash(&mut h);
        (h.finish() % self.shards.len() as u64) as usize
    }

    /// Interns a source name globally, returning its id.
    fn intern_source(&self, name: &str) -> SourceId {
        if let Some(id) = self.sources.read_locked().get(name) {
            return id;
        }
        self.sources.write_locked().intern(name)
    }

    /// Resolves a source name to its global id, if known.
    pub fn source_id(&self, name: &str) -> Option<SourceId> {
        self.sources.read_locked().get(name)
    }

    /// Global source names in id order.
    pub fn source_names(&self) -> Vec<String> {
        self.sources
            .read_locked()
            .iter()
            .map(|(_, n)| n.to_owned())
            .collect()
    }

    /// Number of distinct sources interned so far.
    pub fn num_sources(&self) -> usize {
        self.sources.read_locked().len()
    }

    /// Ingests one `(entity, attribute, source)` triple.
    pub fn ingest(&self, entity: &str, attr: &str, source: &str) -> IngestOutcome {
        self.ingest_record(entity, attr, source, None)
    }

    /// Ingests one valued `(entity, attribute, source, value)` row — the
    /// real-valued-domain ingest path. `value` must be finite (the HTTP
    /// layer rejects non-finite values with a 400 before they reach the
    /// store).
    ///
    /// # Panics
    ///
    /// Panics (debug builds) on a non-finite value.
    pub fn ingest_valued(
        &self,
        entity: &str,
        attr: &str,
        source: &str,
        value: f64,
    ) -> IngestOutcome {
        debug_assert!(value.is_finite(), "claim value must be finite");
        self.ingest_record(entity, attr, source, Some(value))
    }

    /// Replays one log record (snapshot restore and WAL replay).
    pub fn replay(&self, record: &LogRecord) -> IngestOutcome {
        self.ingest_record(&record.entity, &record.attr, &record.source, record.value)
    }

    /// Ingests a batch of rows under **one** acquisition of the
    /// ingest-order lock, optionally journaling the accepted rows before
    /// the lock is released.
    ///
    /// Holding the lock across the batch gives the accepted rows
    /// contiguous sequence numbers starting at
    /// [`BatchOutcome::first_seq`], and running `journal` (the WAL
    /// append) *inside* the lock guarantees journal-record order equals
    /// sequence order — recovery is then an exact prefix replay. The
    /// journal gets `(first_seq, accepted_rows)` and should only write
    /// (buffered); fsync belongs after this returns, off the ingest lock
    /// (see [`crate::wal::DomainWal::sync_for_ack`]).
    ///
    /// If the journal fails, the rows are **already in memory** (and
    /// counted as pending), with their sequence numbers consumed; the
    /// error is returned so the caller can refuse to ack. The journal
    /// implementation must therefore not *drop* the failed record — a
    /// later record journaled at a higher `first_seq` would leave a
    /// sequence gap that recovery rightly refuses to replay past.
    /// [`crate::wal::DomainWal::append_batch`] keeps the failed frame in
    /// a backlog and re-journals it ahead of any later frame; the
    /// client's retry deduplicates in memory and is acked only once that
    /// backlog has reached disk (see [`crate::domain::Domain::ingest_batch`]).
    pub fn ingest_batch(
        &self,
        rows: &[LogRecord],
        journal: Option<JournalFn<'_>>,
    ) -> std::io::Result<BatchOutcome> {
        let mut log = self.log.locked();
        let mut out = BatchOutcome {
            first_seq: log.len() as u64 + 1,
            ..BatchOutcome::default()
        };
        let mut accepted = Vec::with_capacity(rows.len());
        for row in rows {
            match self.ingest_locked(&mut log, row.clone()) {
                IngestOutcome::Duplicate(_) => out.duplicates += 1,
                IngestOutcome::NewFact(_) => {
                    out.new_facts += 1;
                    out.accepted += 1;
                    accepted.push(row.clone());
                }
                IngestOutcome::NewRow(_) => {
                    out.accepted += 1;
                    accepted.push(row.clone());
                }
            }
        }
        if out.accepted > 0 {
            if let Some(journal) = journal {
                journal(out.first_seq, &accepted)?;
            }
        }
        Ok(out)
    }

    fn ingest_record(
        &self,
        entity: &str,
        attr: &str,
        source: &str,
        value: Option<f64>,
    ) -> IngestOutcome {
        // Built before the lock: the allocations don't need serialising,
        // only id minting and the append do.
        let entry = LogRecord {
            entity: entity.to_owned(),
            attr: attr.to_owned(),
            source: source.to_owned(),
            value,
        };
        // Ingest-order lock: held across id minting AND the log append so
        // replay order can never disagree with id-assignment order (the
        // snapshot-restore invariant). Serialises ingest; reads and refit
        // rebuilds never take it.
        let mut log = self.log.locked();
        self.ingest_locked(&mut log, entry)
    }

    /// The ingest body, with the ingest-order lock already held by the
    /// caller (single-row ingest takes it per row; [`Self::ingest_batch`]
    /// holds it across a whole batch so the batch's accepted rows get
    /// contiguous sequence numbers and can be journaled as one record).
    fn ingest_locked(&self, log: &mut Vec<LogRecord>, entry: LogRecord) -> IngestOutcome {
        let (entity, attr, source, value) =
            (&entry.entity, &entry.attr, &entry.source, entry.value);
        let s = self.intern_source(source).raw();
        let shard_idx = self.shard_of(entity);
        // analyzer: allow(panic-index) -- shard_of reduces the hash modulo shards.len()
        let mut shard = self.shards[shard_idx].locked();
        let e = shard.entities.intern(entity).raw();
        let a = shard.attrs.intern(attr).raw();
        while shard.cover.len() <= e as usize {
            shard.cover.push(Vec::new());
            shard.entity_facts.push(Vec::new());
        }

        if !shard.rows.insert((e, a, s)) {
            // analyzer: allow(panic-index) -- a row in `rows` implies its fact was indexed on first insert
            let local = shard.fact_index[&(e, a)];
            self.duplicate_rows.fetch_add(1, Ordering::Relaxed);
            // analyzer: allow(panic-index) -- fact_index values are indices into facts
            return IngestOutcome::Duplicate(shard.facts[local as usize].2);
        }
        if let Some(v) = value {
            shard.values.insert((e, a, s), v);
        }
        // analyzer: allow(panic-index) -- cover was grown past e by the loop above
        let newly_covering = match shard.cover[e as usize].binary_search(&s) {
            Err(pos) => {
                // analyzer: allow(panic-index) -- cover was grown past e by the loop above
                shard.cover[e as usize].insert(pos, s);
                // One new negative-or-positive row per existing fact of
                // the entity (the asserted fact, if new, is counted when
                // it is created below, over the already-grown cover).
                // analyzer: allow(panic-index) -- entity_facts is grown in lockstep with cover
                shard.claims += shard.entity_facts[e as usize].len();
                true
            }
            Ok(_) => false,
        };

        let (global, new_fact, local) = match shard.fact_index.get(&(e, a)) {
            // analyzer: allow(panic-index) -- fact_index values are indices into facts
            Some(&local) => (shard.facts[local as usize].2, false, local),
            None => {
                // New fact: assign the next global id. Registry is only
                // ever locked while a shard lock is held (never the other
                // way round), so this nesting cannot deadlock.
                let mut registry = self.registry.write_locked();
                let global = registry.len() as u64;
                let local = shard.facts.len() as u32;
                registry.push(FactLocation {
                    shard: shard_idx,
                    local,
                });
                drop(registry);
                shard.facts.push((e, a, global));
                shard.fact_index.insert((e, a), local);
                // analyzer: allow(panic-index) -- entity_facts is grown in lockstep with cover
                shard.entity_facts[e as usize].push(local);
                // analyzer: allow(panic-index) -- cover was grown past e by the loop above
                shard.claims += shard.cover[e as usize].len();
                (global, true, local)
            }
        };

        // Dirty marking for delta refits. The sequence is this row's
        // 1-based replay-log position (stable under snapshot replay). A
        // source newly covering the entity retroactively adds a
        // Definition-3 negative row to every fact of the entity, so they
        // are all dirtied; otherwise only the asserted fact changed.
        let seq = log.len() as u64 + 1;
        let sh = &mut *shard;
        if newly_covering {
            // analyzer: allow(panic-index) -- entity_facts is grown in lockstep with cover
            for &lf in &sh.entity_facts[e as usize] {
                sh.dirty.insert(lf, seq);
            }
        } else {
            sh.dirty.insert(local, seq);
        }

        log.push(entry);
        // Published while the ingest-order and shard locks are still
        // held: a reader that acquires this shard's lock afterwards sees
        // every mutation numbered at or below the sequence it reads.
        self.seq.store(seq, Ordering::Release);
        self.pending.fetch_add(1, Ordering::Relaxed);
        if new_fact {
            IngestOutcome::NewFact(global)
        } else {
            IngestOutcome::NewRow(global)
        }
    }

    /// Resolves a global fact id to its names and current claim list.
    pub fn fact(&self, id: u64) -> Option<FactView> {
        let loc = *self.registry.read_locked().get(usize::try_from(id).ok()?)?;
        // Registry lock is released here; only then is the shard locked.
        // analyzer: allow(panic-index) -- registry entries record the shard index that minted them
        let shard = self.shards[loc.shard].locked();
        let &(e, a, global) = shard.facts.get(loc.local as usize)?;
        debug_assert_eq!(global, id);
        Some(FactView {
            id,
            entity: shard.entities.resolve(EntityId::new(e)).to_owned(),
            attr: shard.attrs.resolve(AttrId::new(a)).to_owned(),
            claims: shard.claims_of(loc.local),
        })
    }

    /// Resolves a global fact id to its names and valued claim list (the
    /// real-valued-domain sibling of [`ShardedStore::fact`]).
    pub fn fact_real(&self, id: u64) -> Option<RealFactView> {
        let loc = *self.registry.read_locked().get(usize::try_from(id).ok()?)?;
        // analyzer: allow(panic-index) -- registry entries record the shard index that minted them
        let shard = self.shards[loc.shard].locked();
        let &(e, a, global) = shard.facts.get(loc.local as usize)?;
        debug_assert_eq!(global, id);
        Some(RealFactView {
            id,
            entity: shard.entities.resolve(EntityId::new(e)).to_owned(),
            attr: shard.attrs.resolve(AttrId::new(a)).to_owned(),
            claims: shard.real_claims_of(loc.local),
        })
    }

    /// Resolves an `(entity, attribute)` name pair to its global fact id,
    /// if the fact has been ingested. This is the label-join used by
    /// `/eval`: ground-truth labels arrive as names and are matched to
    /// the shadow tables' global-id rows through this lookup.
    pub fn fact_id_by_name(&self, entity: &str, attr: &str) -> Option<u64> {
        // analyzer: allow(panic-index) -- shard_of reduces the hash modulo shards.len()
        let shard = self.shards[self.shard_of(entity)].locked();
        let e = shard.entities.get(entity)?;
        let a = shard.attrs.get(attr)?;
        let local = *shard
            .fact_index
            .get(&(e.index() as u32, a.index() as u32))?;
        shard.facts.get(local as usize).map(|&(_, _, g)| g)
    }

    /// Accepted-row sequence: the number of triples accepted so far
    /// (equal to the replay-log length, maintained without the log lock).
    pub fn accepted_seq(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }

    /// Rebuilds every non-empty shard as a [`ClaimDb`] over the global
    /// source-id space — the **full** (reconciliation) extraction.
    ///
    /// Every shard lock is acquired *before* the source count and the
    /// accepted-row sequence are read: ingest interns a triple's source
    /// and bumps the sequence before releasing its shard lock, so once
    /// all shards are held, no stored row can reference a source id at or
    /// beyond `num_sources()` and every row numbered at or below the
    /// returned watermark is present in the batches. Ingestion stalls
    /// only for the rebuild itself, never for the fit that follows.
    pub fn full_databases(&self) -> StoreDelta {
        self.full_databases_with_ids().0
    }

    /// [`ShardedStore::full_databases`] plus, per batch, the global fact
    /// id of every batch row (batch fact index `i` ↔ `ids[i]`). This is
    /// the extraction behind the shadow baseline fits, which key their
    /// published score tables by global fact id so `/eval`, `/stats`
    /// agreement, and snapshot persistence all address the same rows.
    pub fn full_databases_with_ids(&self) -> (StoreDelta, Vec<Vec<u64>>) {
        let guards: Vec<_> = self.shards.iter().map(|s| s.locked()).collect();
        let watermark = self.accepted_seq();
        let num_sources = self.num_sources();
        let mut delta_facts = 0;
        let mut total_claims = 0;
        let mut globals = Vec::new();
        let batches: Vec<ClaimDb> = guards
            .iter()
            .filter(|s| !s.facts.is_empty())
            .map(|s| {
                delta_facts += s.facts.len();
                total_claims += s.num_claims();
                globals.push(s.facts.iter().map(|&(_, _, g)| g).collect());
                s.to_claim_db(num_sources)
            })
            .collect();
        (
            StoreDelta {
                batches,
                watermark,
                delta_facts,
                delta_claims: total_claims,
                total_claims,
            },
            globals,
        )
    }

    /// Extracts only the facts dirtied since `watermark` — the **delta**
    /// extraction behind incremental refits (paper §5.4: a new batch
    /// costs only the size of the increment). Each returned batch holds
    /// the *current* Definition-3 claim rows of its dirty facts,
    /// including retroactive negative rows added when a new source
    /// started covering an old entity.
    ///
    /// Shard locks are held one at a time, only long enough to copy that
    /// shard's dirty facts — ingest never stalls behind the Gibbs fit,
    /// and (unlike the full rebuild) not even behind other shards'
    /// copies. The window is bounded above by the sequence read before
    /// the first shard lock: rows accepted mid-extraction stay dirty and
    /// are picked up by the next delta. Dirty entries at or below
    /// `watermark` (already folded by the caller) are pruned in passing.
    ///
    /// The batches are emitted over the source-id space read *after* all
    /// copies complete, which covers every id any copied row can
    /// reference (sources are interned before their rows are stored).
    pub fn shard_databases_since(&self, watermark: u64) -> StoreDelta {
        let upto = self.accepted_seq();
        let mut parts = Vec::new();
        let mut delta_facts = 0;
        let mut delta_claims = 0;
        let mut total_claims = 0;
        for shard in &self.shards {
            let mut sh = shard.locked();
            total_claims += sh.num_claims();
            sh.dirty.retain(|_, seq| *seq > watermark);
            if let Some((facts, claims)) = sh.delta_parts(watermark, upto) {
                delta_facts += facts.len();
                delta_claims += claims.len();
                parts.push((facts, claims));
            }
        }
        let num_sources = self.num_sources();
        StoreDelta {
            batches: parts
                .into_iter()
                .map(|(facts, claims)| ClaimDb::from_parts(facts, claims, num_sources))
                .collect(),
            watermark: upto,
            delta_facts,
            delta_claims,
            total_claims,
        }
    }

    /// [`ShardedStore::full_databases`] for valued domains: rebuilds
    /// every non-empty shard as a [`RealClaimDb`] (negative rows at
    /// `0.0`). Same locking discipline as the boolean full rebuild.
    pub fn full_real_databases(&self) -> RealStoreDelta {
        let guards: Vec<_> = self.shards.iter().map(|s| s.locked()).collect();
        let watermark = self.accepted_seq();
        let num_sources = self.num_sources();
        let mut delta_facts = 0;
        let mut total_claims = 0;
        let batches: Vec<RealClaimDb> = guards
            .iter()
            .filter(|s| !s.facts.is_empty())
            .map(|s| {
                delta_facts += s.facts.len();
                total_claims += s.num_claims();
                s.to_real_claim_db(num_sources)
            })
            .collect();
        RealStoreDelta {
            batches,
            watermark,
            delta_facts,
            delta_claims: total_claims,
            total_claims,
        }
    }

    /// [`ShardedStore::shard_databases_since`] for valued domains: only
    /// the facts dirtied since `watermark`, as [`RealClaimDb`] batches.
    /// Same locking discipline and watermark semantics as the boolean
    /// delta path (shard locks held one at a time, dirty entries at or
    /// below `watermark` pruned in passing).
    pub fn real_databases_since(&self, watermark: u64) -> RealStoreDelta {
        let upto = self.accepted_seq();
        let mut parts = Vec::new();
        let mut delta_facts = 0;
        let mut delta_claims = 0;
        let mut total_claims = 0;
        for shard in &self.shards {
            let mut sh = shard.locked();
            total_claims += sh.num_claims();
            sh.dirty.retain(|_, seq| *seq > watermark);
            if let Some((facts, claims)) = sh.real_delta_parts(watermark, upto) {
                delta_facts += facts;
                delta_claims += claims.len();
                parts.push((facts, claims));
            }
        }
        let num_sources = self.num_sources();
        RealStoreDelta {
            batches: parts
                .into_iter()
                .map(|(facts, claims)| RealClaimDb::new(facts, num_sources, claims))
                .collect(),
            watermark: upto,
            delta_facts,
            delta_claims,
            total_claims,
        }
    }

    /// Accepted rows since the last [`ShardedStore::consume_pending`].
    pub fn pending(&self) -> usize {
        self.pending.load(Ordering::Relaxed)
    }

    /// Subtracts `n` from the pending counter (called by the refit daemon
    /// after folding a snapshot of the store; rows ingested mid-refit stay
    /// pending).
    pub fn consume_pending(&self, n: usize) {
        let mut cur = self.pending.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self.pending.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Aggregate statistics (locks each shard briefly).
    pub fn stats(&self) -> StoreStats {
        let mut facts = 0;
        let mut claims = 0;
        let mut positive = 0;
        for s in &self.shards {
            let s = s.locked();
            facts += s.facts.len();
            claims += s.num_claims();
            positive += s.rows.len();
        }
        StoreStats {
            shards: self.shards.len(),
            facts,
            claims,
            positive_claims: positive,
            sources: self.num_sources(),
            pending: self.pending(),
            duplicate_rows: self.duplicate_rows.load(Ordering::Relaxed),
        }
    }

    /// The accepted-row log in arrival order (for snapshots).
    pub fn log_snapshot(&self) -> Vec<LogRecord> {
        self.log.locked().clone()
    }

    /// One consistent persistence view: `(source names in id order,
    /// accepted-row log, pending count)`, all read under the
    /// ingest-order lock so no concurrent ingest can interleave between
    /// them. Reading these piecemeal would let a racing ingest mint a
    /// source that appears in the log copy but not the sources copy —
    /// and that snapshot fails its own restore validation at the next
    /// boot.
    pub fn persistence_snapshot(&self) -> (Vec<String>, Vec<LogRecord>, usize) {
        let log = self.log.locked();
        (self.source_names(), log.clone(), self.pending())
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table1_store(shards: usize) -> ShardedStore {
        let store = ShardedStore::new(shards);
        for (e, a, s) in [
            ("Harry Potter", "Daniel Radcliffe", "IMDB"),
            ("Harry Potter", "Emma Watson", "IMDB"),
            ("Harry Potter", "Rupert Grint", "IMDB"),
            ("Harry Potter", "Daniel Radcliffe", "Netflix"),
            ("Harry Potter", "Daniel Radcliffe", "BadSource.com"),
            ("Harry Potter", "Emma Watson", "BadSource.com"),
            ("Harry Potter", "Johnny Depp", "BadSource.com"),
            ("Pirates 4", "Johnny Depp", "Hulu.com"),
        ] {
            store.ingest(e, a, s);
        }
        store
    }

    #[test]
    fn matches_paper_table3_regardless_of_shard_count() {
        for shards in [1, 2, 7] {
            let store = table1_store(shards);
            let stats = store.stats();
            assert_eq!(stats.facts, 5, "{shards} shards");
            assert_eq!(stats.claims, 13, "{shards} shards");
            assert_eq!(stats.positive_claims, 8, "{shards} shards");
            assert_eq!(stats.sources, 4);
            let total: usize = store
                .full_databases()
                .batches
                .iter()
                .map(|db| db.num_claims())
                .sum();
            assert_eq!(total, 13);
        }
    }

    #[test]
    fn ingest_outcomes_and_dedup() {
        let store = ShardedStore::new(2);
        let first = store.ingest("e", "a", "s0");
        assert!(matches!(first, IngestOutcome::NewFact(0)));
        assert!(matches!(
            store.ingest("e", "a", "s1"),
            IngestOutcome::NewRow(0)
        ));
        let dup = store.ingest("e", "a", "s0");
        assert_eq!(dup, IngestOutcome::Duplicate(0));
        assert!(!dup.accepted());
        assert_eq!(store.pending(), 2, "duplicates do not count as pending");
    }

    #[test]
    fn fact_view_exposes_negative_claims() {
        let store = ShardedStore::new(3);
        store.ingest("e", "a0", "s0");
        store.ingest("e", "a1", "s1");
        let f0 = store.fact(0).unwrap();
        assert_eq!((f0.entity.as_str(), f0.attr.as_str()), ("e", "a0"));
        // Both sources cover entity `e`; s1 did not assert a0.
        let s0 = store.source_id("s0").unwrap();
        let s1 = store.source_id("s1").unwrap();
        assert_eq!(f0.claims, vec![(s0, true), (s1, false)]);
        assert!(store.fact(99).is_none());
    }

    #[test]
    fn replaying_log_reproduces_ids() {
        let store = table1_store(4);
        store.ingest("Harry Potter", "Emma Watson", "Netflix");
        let replayed = ShardedStore::new(4);
        for rec in store.log_snapshot() {
            replayed.replay(&rec);
        }
        assert_eq!(replayed.source_names(), store.source_names());
        let n = store.stats().facts as u64;
        assert_eq!(replayed.stats().facts as u64, n);
        for id in 0..n {
            let a = store.fact(id).unwrap();
            let b = replayed.fact(id).unwrap();
            assert_eq!((a.entity, a.attr, a.claims), (b.entity, b.attr, b.claims));
        }
    }

    #[test]
    fn concurrent_ingest_log_replays_to_identical_ids() {
        // Regression test for the ingest-order race: id minting and the
        // log append must be one atomic step, or racing ingests on
        // different shards can mint source/fact ids in one order and log
        // in the other — and then the sequential snapshot replay assigns
        // different ids than the live server handed out.
        use std::sync::Arc;
        let store = Arc::new(ShardedStore::new(8));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        // Distinct entities and sources per (thread, i) so
                        // every triple mints fresh ids in both spaces.
                        store.ingest(&format!("e{t}-{i}"), "a", &format!("s{t}-{i}"));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }

        let replayed = ShardedStore::new(8);
        for rec in store.log_snapshot() {
            replayed.replay(&rec);
        }
        assert_eq!(
            replayed.source_names(),
            store.source_names(),
            "replay must reproduce the source-id assignment"
        );
        let n = store.stats().facts as u64;
        assert_eq!(replayed.stats().facts as u64, n);
        for id in 0..n {
            let a = store.fact(id).unwrap();
            let b = replayed.fact(id).unwrap();
            assert_eq!(
                (a.entity, a.attr, a.claims),
                (b.entity, b.attr, b.claims),
                "global fact id {id} must resolve identically after replay"
            );
        }
    }

    #[test]
    fn persistence_snapshot_is_consistent_under_concurrent_ingest() {
        // Every source named in the log copy must exist in the sources
        // copy taken by the same call — otherwise the saved snapshot
        // fails its own restore validation at the next boot.
        use std::sync::Arc;
        let store = Arc::new(ShardedStore::new(4));
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    for i in 0..500u32 {
                        store.ingest(&format!("e{t}-{i}"), "a", &format!("s{t}-{i}"));
                    }
                })
            })
            .collect();
        let mut done = false;
        while !done {
            done = writers.iter().all(|w| w.is_finished());
            let (sources, log, pending) = store.persistence_snapshot();
            let known: HashSet<&str> = sources.iter().map(String::as_str).collect();
            for rec in &log {
                let s = &rec.source;
                assert!(known.contains(s.as_str()), "log names unknown source {s}");
            }
            // Nothing consumes pending in this test, so the two reads
            // under one lock hold must agree exactly.
            assert_eq!(pending, log.len());
        }
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(store.pending(), 2000);
    }

    #[test]
    fn consume_pending_saturates() {
        let store = ShardedStore::new(1);
        store.ingest("e", "a", "s");
        store.consume_pending(10);
        assert_eq!(store.pending(), 0);
    }

    #[test]
    fn shard_databases_share_global_source_space() {
        let store = table1_store(8);
        for db in store.full_databases().batches {
            assert_eq!(db.num_sources(), 4);
        }
    }

    #[test]
    fn delta_since_zero_matches_full_extraction() {
        let store = table1_store(4);
        let full = store.full_databases();
        let delta = store.shard_databases_since(0);
        assert_eq!(delta.watermark, full.watermark);
        assert_eq!(delta.watermark, store.accepted_seq());
        assert_eq!(delta.delta_facts, full.delta_facts);
        assert_eq!(delta.delta_claims, 13, "every claim is in the delta");
        assert_eq!(delta.total_claims, 13);
        let total: usize = delta.batches.iter().map(|db| db.num_claims()).sum();
        assert_eq!(total, 13);
    }

    #[test]
    fn delta_after_watermark_contains_only_touched_facts() {
        let store = table1_store(4);
        let watermark = store.shard_databases_since(0).watermark;
        // A clean window extracts nothing.
        let clean = store.shard_databases_since(watermark);
        assert!(clean.batches.is_empty());
        assert_eq!(clean.delta_facts, 0);
        assert_eq!(clean.watermark, watermark);
        // One new entity from an existing source dirties only its fact.
        store.ingest("Inception", "Leonardo DiCaprio", "IMDB");
        let delta = store.shard_databases_since(watermark);
        assert_eq!(delta.delta_facts, 1);
        assert_eq!(delta.delta_claims, 1, "only IMDB covers the new entity");
        assert_eq!(delta.watermark, watermark + 1);
        // The store total keeps counting everything.
        assert_eq!(delta.total_claims, store.stats().claims);
    }

    #[test]
    fn retroactive_coverage_dirties_every_fact_of_the_entity() {
        // Definition 3: when a source newly covers an entity, every
        // existing fact of that entity gains a negative row — those facts
        // must reappear in the delta even though their own triples are
        // ancient.
        let store = ShardedStore::new(2);
        store.ingest("e", "a0", "s0");
        store.ingest("e", "a1", "s0");
        store.ingest("other", "a0", "s0");
        let watermark = store.shard_databases_since(0).watermark;

        // `late` asserts only (e, a0) — but now covers entity `e`.
        store.ingest("e", "a0", "late");
        let delta = store.shard_databases_since(watermark);
        assert_eq!(
            delta.delta_facts, 2,
            "both facts of `e` changed; `other` did not"
        );
        // 2 facts × 2 covering sources = 4 claims, with late's row on
        // (e, a1) present and negative.
        assert_eq!(delta.delta_claims, 4);
        let late = store.source_id("late").unwrap();
        let batch = &delta.batches[0];
        let late_rows: Vec<bool> = batch
            .fact_ids()
            .flat_map(|f| batch.claims_of_fact(f))
            .filter(|(s, _)| *s == late)
            .map(|(_, o)| o)
            .collect();
        assert_eq!(
            late_rows.iter().filter(|&&o| o).count(),
            1,
            "late asserted exactly one of the two facts"
        );
        assert_eq!(late_rows.len(), 2, "late has a row on both dirty facts");
    }

    #[test]
    fn replay_reproduces_delta_watermarks() {
        // Sequence numbers are replay-log positions, so a restored store
        // resumes the same watermark arithmetic as the one that saved.
        let store = table1_store(4);
        let w = store.shard_databases_since(0).watermark;
        store.ingest("Inception", "Leonardo DiCaprio", "IMDB");

        let replayed = ShardedStore::new(4);
        for rec in store.log_snapshot() {
            replayed.replay(&rec);
        }
        assert_eq!(replayed.accepted_seq(), store.accepted_seq());
        let delta = replayed.shard_databases_since(w);
        assert_eq!(delta.delta_facts, 1, "only the post-watermark fact");
        assert_eq!(delta.watermark, store.accepted_seq());
    }

    #[test]
    fn claim_counter_matches_recompute_under_mixed_ingest() {
        // The O(1) per-shard claim counter must track the Definition-3
        // recompute through every ingest shape: new facts, retroactive
        // coverage, re-asserted rows, and duplicates.
        let store = ShardedStore::new(3);
        let triples = [
            ("e0", "a0", "s0"), // new fact, new coverage
            ("e0", "a1", "s0"), // new fact, existing coverage
            ("e0", "a0", "s1"), // retroactive coverage of e0 (+2 rows)
            ("e0", "a1", "s1"), // obs flip only (no new claims)
            ("e0", "a1", "s1"), // duplicate (no change)
            ("e1", "a0", "s1"), // fresh entity
            ("e1", "a0", "s0"), // retroactive coverage of e1
        ];
        for (i, (e, a, s)) in triples.iter().enumerate() {
            store.ingest(e, a, s);
            // Independent recompute from the CSR rebuild path.
            let rebuilt: usize = store
                .full_databases()
                .batches
                .iter()
                .map(|db| db.num_claims())
                .sum();
            assert_eq!(store.stats().claims, rebuilt, "after triple {i}");
        }
        // e0: 2 facts × 2 covering sources; e1: 1 fact × 2.
        assert_eq!(store.stats().claims, 6);
    }

    #[test]
    fn duplicates_do_not_advance_the_sequence_or_dirty_facts() {
        let store = ShardedStore::new(1);
        store.ingest("e", "a", "s");
        let w = store.shard_databases_since(0).watermark;
        assert_eq!(w, 1);
        store.ingest("e", "a", "s");
        assert_eq!(store.accepted_seq(), 1);
        assert!(store.shard_databases_since(w).batches.is_empty());
    }
}
