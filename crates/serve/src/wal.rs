//! Per-domain binary write-ahead log: the durability layer behind the
//! ack contract *"HTTP 200 on `/claims` ⇒ the batch survives a crash"*.
//!
//! Every accepted ingest batch is encoded as one framed record —
//! length-prefixed, CRC32-checksummed, carrying the domain name, the
//! first accepted-row sequence, and the rows themselves (with values for
//! real-valued domains) — appended to the domain's active segment file
//! **while the store's ingest-order lock is still held** (so WAL order
//! can never disagree with sequence order), and fsync'd per the
//! configured [`WalSyncPolicy`] before the HTTP response is written.
//!
//! Segments rotate at [`WalConfig::segment_bytes`]; the server's
//! background compactor folds sealed segments into the v2 snapshot and
//! deletes them, so `snapshot + WAL tail` is always a complete recovery
//! image and disk usage stays bounded. On boot, [`DomainWal::open`]
//! replays the tail through the normal ingest path: a **torn final
//! record** (a crash mid-append) is truncated with a warning — the
//! server never refuses to boot over its own interrupted write — while
//! a corrupt record *followed by further valid data* is a hard
//! [`std::io::ErrorKind::InvalidData`] error, because bytes behind it
//! were acked and silently skipping them would break the ack contract.
//!
//! The record framing is `[len: u32 LE][crc32(payload): u32 LE][payload]`
//! with payload `domain, first_seq, rows[]` (see [`encode_record`]); the
//! CRC is the table-driven IEEE-802.3 polynomial implemented in
//! [`crc32`] (no external crates, per the vendored-dependency policy).
//! [`WalConfig::fault_hook`] injects write/fsync failures for the
//! crash-recovery and degraded-health tests.
//!
//! **Failed appends and the backlog.** A failed append cannot simply be
//! dropped: the store has already accepted the rows and consumed their
//! sequence numbers (it cannot un-ingest), so skipping the frame would
//! leave a sequence gap on disk that replay's contiguity check rightly
//! refuses to boot past. Instead the encoded frame is kept in an ordered
//! backlog, and **every later append drains the backlog first** — the
//! on-disk log is therefore always a gap-free prefix of the accepted
//! sequence. A client retry of the failed batch deduplicates in memory
//! (`accepted == 0`), so the ack path calls [`DomainWal::flush_backlog`]
//! before acking a duplicate-only batch; either way the rows reach disk
//! before any 200 covers them. The WAL stays `degraded` until the
//! backlog is empty again.

use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::store::{IngestOutcome, LogRecord, ShardedStore};
use crate::sync::LockExt;

/// Segment file names: `wal-{first_seq:020}.seg` (20 digits covers u64).
const SEGMENT_PREFIX: &str = "wal-";
/// See [`SEGMENT_PREFIX`].
const SEGMENT_SUFFIX: &str = ".seg";
/// Per-domain metadata file (model kind + shard count), written when the
/// domain's WAL directory is created so a boot can re-create domains
/// that exist only in the WAL (created at runtime, crashed before any
/// snapshot).
pub const META_FILE: &str = "meta.json";
/// Sanity bound on one record's payload: larger lengths are treated as
/// corruption, not allocation requests. Comfortably above the HTTP
/// layer's 16 MiB body cap.
const MAX_RECORD: u32 = 64 * 1024 * 1024;

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, table-driven)
// ---------------------------------------------------------------------------

/// The 256-entry CRC32 lookup table for the reflected IEEE-802.3
/// polynomial `0xEDB88320`, built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        // analyzer: allow(panic-index) -- const-evaluated loop, i < 256 == table.len()
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32 (IEEE 802.3) of `bytes` — the checksum guarding every WAL
/// record. Standard check value: `crc32(b"123456789") == 0xCBF43926`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        // analyzer: allow(panic-index) -- index is masked to 0..=255 and the table has 256 entries
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// When appended WAL bytes are fsync'd relative to the HTTP ack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalSyncPolicy {
    /// fsync before every ack: an acked batch survives power loss.
    Always,
    /// fsync at most once per interval: an acked batch survives a
    /// process crash immediately, and power loss after at most the
    /// interval. The bound traded for ~one fsync per interval instead of
    /// one per batch.
    IntervalMs(u64),
    /// Never fsync on the ack path (the OS flushes at its leisure): an
    /// acked batch survives a process crash (`kill -9`) but not
    /// necessarily power loss. Segment seals and shutdown still sync.
    Never,
}

impl std::str::FromStr for WalSyncPolicy {
    type Err = String;

    /// Parses `always`, `never`, or `interval:<ms>` (a bare integer is
    /// also read as interval milliseconds).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "always" => Ok(WalSyncPolicy::Always),
            "never" => Ok(WalSyncPolicy::Never),
            other => {
                let ms = other.strip_prefix("interval:").unwrap_or(other);
                ms.parse::<u64>()
                    .map(WalSyncPolicy::IntervalMs)
                    .map_err(|_| {
                        format!("bad --wal-sync `{other}`: use always, never, or interval:<millis>")
                    })
            }
        }
    }
}

impl std::fmt::Display for WalSyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalSyncPolicy::Always => f.write_str("always"),
            WalSyncPolicy::Never => f.write_str("never"),
            WalSyncPolicy::IntervalMs(ms) => write!(f, "interval:{ms}"),
        }
    }
}

/// The operation a [`FaultHook`] intercepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalOp {
    /// A record append (file write).
    Append,
    /// An fsync.
    Sync,
}

/// Fault-injection hook: called before every WAL write/fsync; returning
/// `Some(err)` makes that operation fail without touching the file. The
/// crash-recovery harness and the degraded-`/healthz` tests use this to
/// exercise the failure paths deterministically.
pub type FaultHook = Arc<dyn Fn(WalOp) -> Option<io::Error> + Send + Sync>;

/// Write-ahead-log configuration (one per server, applied per domain).
#[derive(Clone)]
pub struct WalConfig {
    /// Root directory; each domain logs under `<dir>/<domain>/`.
    pub dir: PathBuf,
    /// fsync policy on the ack path.
    pub sync: WalSyncPolicy,
    /// Segment rotation threshold in bytes.
    pub segment_bytes: u64,
    /// Optional fault-injection hook (tests only).
    pub fault_hook: Option<FaultHook>,
}

impl WalConfig {
    /// A config with the given root and the defaults used by `ltm serve`
    /// (`--wal-sync always`, 8 MiB segments, no fault hook).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            sync: WalSyncPolicy::Always,
            segment_bytes: 8 * 1024 * 1024,
            fault_hook: None,
        }
    }
}

impl std::fmt::Debug for WalConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalConfig")
            .field("dir", &self.dir)
            .field("sync", &self.sync)
            .field("segment_bytes", &self.segment_bytes)
            .field("fault_hook", &self.fault_hook.as_ref().map(|_| "…"))
            .finish()
    }
}

/// The per-domain metadata sidecar ([`META_FILE`]): enough to re-create
/// the domain at boot when it exists only in the WAL — the domain was
/// created at runtime and the process died before any snapshot recorded
/// it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WalDomainMeta {
    /// [`crate::model::ModelKind`] wire name.
    pub kind: String,
    /// Store shard count (restore validation, like the snapshot's).
    pub shards: usize,
}

// ---------------------------------------------------------------------------
// Record framing
// ---------------------------------------------------------------------------

/// One decoded WAL record: an accepted batch.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Domain the batch was accepted into (replay validates it against
    /// the directory's domain — a mismatch is corruption).
    pub domain: String,
    /// Sequence of the first row in `rows`; row `i` has sequence
    /// `first_seq + i` (accepted rows of one batch are contiguous
    /// because the batch holds the ingest-order lock end to end).
    pub first_seq: u64,
    /// The accepted rows, in sequence order.
    pub rows: Vec<LogRecord>,
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

/// Encodes one record as a framed byte string:
/// `[payload_len: u32 LE][crc32(payload): u32 LE][payload]`, where the
/// payload is `domain` (u32-length-prefixed UTF-8), `first_seq` (u64
/// LE), the row count (u32 LE), then per row the length-prefixed
/// `entity`, `attr`, `source` strings and a value tag (`0` = none,
/// `1` followed by the f64 LE bits).
pub fn encode_record(record: &WalRecord) -> Vec<u8> {
    let mut payload = Vec::with_capacity(64 + record.rows.len() * 48);
    put_str(&mut payload, &record.domain);
    payload.extend_from_slice(&record.first_seq.to_le_bytes());
    payload.extend_from_slice(&(record.rows.len() as u32).to_le_bytes());
    for row in &record.rows {
        put_str(&mut payload, &row.entity);
        put_str(&mut payload, &row.attr);
        put_str(&mut payload, &row.source);
        match row.value {
            None => payload.push(0),
            Some(v) => {
                payload.push(1);
                payload.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
    }
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Why a segment's bytes stopped decoding cleanly.
#[derive(Debug, Clone, PartialEq)]
pub enum SegmentIssue {
    /// The final record is incomplete or fails its checksum with nothing
    /// after it — the signature of a crash mid-append. Recovery
    /// truncates the segment at `offset` and boots.
    TornTail {
        /// Byte offset of the start of the torn record.
        offset: usize,
    },
    /// A record in the *middle* of the log (or in a sealed segment) is
    /// damaged: valid data follows it, so this is disk corruption — not
    /// an interrupted append — and recovery refuses to skip acked bytes.
    Corrupt {
        /// Byte offset of the start of the damaged record.
        offset: usize,
        /// What failed (length sanity, checksum, payload shape).
        reason: String,
    },
}

fn parse_payload(payload: &[u8]) -> Result<WalRecord, String> {
    let mut at = 0usize;
    let take = |at: &mut usize, n: usize| -> Result<&[u8], String> {
        let slice = payload
            .get(*at..*at + n)
            .ok_or_else(|| format!("payload truncated at byte {at}"))?;
        *at += n;
        Ok(slice)
    };
    let take_u32 = |at: &mut usize| -> Result<u32, String> {
        // analyzer: allow(panic-unwrap) -- take(_, 4) yielded exactly 4 bytes
        Ok(u32::from_le_bytes(take(at, 4)?.try_into().unwrap()))
    };
    let take_str = |at: &mut usize| -> Result<String, String> {
        let len = take_u32(at)? as usize;
        let bytes = take(at, len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| format!("non-UTF-8 string at byte {at}"))
    };
    let domain = take_str(&mut at)?;
    // analyzer: allow(panic-unwrap) -- take(_, 8) yielded exactly 8 bytes
    let first_seq = u64::from_le_bytes(take(&mut at, 8)?.try_into().unwrap());
    let count = take_u32(&mut at)? as usize;
    let mut rows = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let entity = take_str(&mut at)?;
        let attr = take_str(&mut at)?;
        let source = take_str(&mut at)?;
        let value = match take(&mut at, 1)?[0] {
            0 => None,
            1 => Some(f64::from_bits(u64::from_le_bytes(
                // analyzer: allow(panic-unwrap) -- take(_, 8) yielded exactly 8 bytes
                take(&mut at, 8)?.try_into().unwrap(),
            ))),
            tag => return Err(format!("bad value tag {tag}")),
        };
        rows.push(LogRecord {
            entity,
            attr,
            source,
            value,
        });
    }
    if at != payload.len() {
        return Err(format!(
            "payload has {} trailing bytes after the last row",
            payload.len() - at
        ));
    }
    Ok(WalRecord {
        domain,
        first_seq,
        rows,
    })
}

/// Decodes a whole segment's bytes. Returns the cleanly decoded records,
/// the byte length of the clean prefix, and the issue that stopped
/// decoding (if any). Torn-vs-corrupt is decided here: an incomplete
/// frame, or a checksum failure on the **final** frame, is
/// [`SegmentIssue::TornTail`]; a damaged frame with valid bytes after it
/// is [`SegmentIssue::Corrupt`].
pub fn decode_segment(bytes: &[u8]) -> (Vec<WalRecord>, usize, Option<SegmentIssue>) {
    let mut records = Vec::new();
    let mut at = 0usize;
    while at < bytes.len() {
        let remaining = bytes.len() - at;
        if remaining < 8 {
            return (records, at, Some(SegmentIssue::TornTail { offset: at }));
        }
        // analyzer: allow(panic-index, panic-unwrap) -- remaining >= 8 was checked above; the slice is exactly 4 bytes
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
        if len > MAX_RECORD {
            return (
                records,
                at,
                Some(SegmentIssue::Corrupt {
                    offset: at,
                    reason: format!("implausible record length {len}"),
                }),
            );
        }
        let len = len as usize;
        if remaining - 8 < len {
            return (records, at, Some(SegmentIssue::TornTail { offset: at }));
        }
        // analyzer: allow(panic-index, panic-unwrap) -- remaining >= 8 was checked above; the slice is exactly 4 bytes
        let expected = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().unwrap());
        // analyzer: allow(panic-index) -- remaining - 8 >= len was checked above
        let payload = &bytes[at + 8..at + 8 + len];
        let is_final = at + 8 + len == bytes.len();
        if crc32(payload) != expected {
            // A final-frame checksum failure is a partially persisted
            // append (the length landed, part of the payload did not);
            // mid-log it means the disk lied about acked bytes.
            let issue = if is_final {
                SegmentIssue::TornTail { offset: at }
            } else {
                SegmentIssue::Corrupt {
                    offset: at,
                    reason: "checksum mismatch".into(),
                }
            };
            return (records, at, Some(issue));
        }
        match parse_payload(payload) {
            Ok(rec) => records.push(rec),
            Err(reason) => {
                return (
                    records,
                    at,
                    Some(SegmentIssue::Corrupt { offset: at, reason }),
                )
            }
        }
        at += 8 + len;
    }
    (records, at, None)
}

// ---------------------------------------------------------------------------
// Segment files
// ---------------------------------------------------------------------------

fn segment_name(first_seq: u64) -> String {
    format!("{SEGMENT_PREFIX}{first_seq:020}{SEGMENT_SUFFIX}")
}

/// First-sequence number encoded in a segment file name, if it is one.
fn segment_seq(name: &str) -> Option<u64> {
    name.strip_prefix(SEGMENT_PREFIX)?
        .strip_suffix(SEGMENT_SUFFIX)?
        .parse()
        .ok()
}

/// Segment paths in a domain WAL directory, ascending by first sequence.
fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut segments = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(seq) = entry.file_name().to_str().and_then(segment_seq) {
            segments.push((seq, entry.path()));
        }
    }
    segments.sort_unstable_by_key(|(seq, _)| *seq);
    Ok(segments)
}

/// What [`DomainWal::open`] recovered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Rows replayed into the store (rows already covered by the
    /// restored snapshot are skipped and not counted).
    pub replayed_rows: u64,
    /// Records decoded across all segments.
    pub records: u64,
    /// Bytes truncated off a torn final record (0 on a clean log).
    pub truncated_bytes: u64,
    /// Segment files scanned.
    pub segments: u64,
}

// ---------------------------------------------------------------------------
// DomainWal
// ---------------------------------------------------------------------------

/// The active-segment state behind the append lock.
#[derive(Debug)]
struct WalInner {
    file: File,
    path: PathBuf,
    /// Bytes in the active segment.
    written: u64,
    /// Whether bytes were appended since the last fsync.
    dirty: bool,
    last_sync: Instant,
    /// Encoded frames whose append failed, in sequence order. They must
    /// reach disk before any later frame (see the module docs) — every
    /// append and [`DomainWal::flush_backlog`] drain this front-first.
    backlog: VecDeque<(u64, Vec<u8>)>,
    /// Set when a partial append could not be truncated away: the file
    /// tail holds garbage, and appending anything after it would turn a
    /// recoverable torn tail into boot-refusing mid-log corruption. All
    /// further appends fail until restart.
    wedged: bool,
}

/// One domain's write-ahead log: an append handle on the active segment
/// plus counters. Appends happen under the store's ingest-order lock
/// (see [`crate::store::ShardedStore::ingest_batch`]); the fsync that
/// backs the ack runs after that lock is released
/// ([`DomainWal::sync_for_ack`]) — syncing later-arrived bytes too is
/// harmless, whereas fsyncing under the ingest lock would stall every
/// writer behind the disk.
pub struct DomainWal {
    domain: String,
    dir: PathBuf,
    sync: WalSyncPolicy,
    segment_bytes: u64,
    hook: Option<FaultHook>,
    inner: Mutex<WalInner>,
    appends: AtomicU64,
    fsyncs: AtomicU64,
    bytes: AtomicU64,
    replayed_rows: AtomicU64,
    /// Set when the last append/fsync failed, cleared on the next
    /// success; surfaces as `/healthz` 503 `degraded`.
    degraded: AtomicBool,
    /// Metric handles attached by the server (absent in bare tests).
    obs: OnceLock<WalObs>,
}

/// Per-domain WAL metric handles: append/fsync latency histograms and the
/// re-journal backlog depth gauge, all labeled `domain=`.
#[derive(Debug, Clone)]
pub struct WalObs {
    /// Latency of one framed-record append (microseconds recorded,
    /// rendered as `ltm_wal_append_duration_seconds`).
    pub append_seconds: Arc<crate::obs::Histogram>,
    /// Latency of one `fsync` (`ltm_wal_fsync_duration_seconds`).
    pub fsync_seconds: Arc<crate::obs::Histogram>,
    /// Frames currently queued for re-journal
    /// (`ltm_wal_backlog_depth`).
    pub backlog_depth: Arc<crate::obs::Gauge>,
}

impl WalObs {
    /// Registers (or re-fetches) the WAL metric family for `domain`.
    pub fn for_domain(registry: &crate::obs::Registry, domain: &str) -> Self {
        let labels = &[("domain", domain)];
        WalObs {
            append_seconds: registry.histogram(
                "ltm_wal_append_duration_seconds",
                labels,
                crate::obs::Unit::Micros,
            ),
            fsync_seconds: registry.histogram(
                "ltm_wal_fsync_duration_seconds",
                labels,
                crate::obs::Unit::Micros,
            ),
            backlog_depth: registry.gauge("ltm_wal_backlog_depth", labels),
        }
    }
}

impl std::fmt::Debug for DomainWal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DomainWal")
            .field("domain", &self.domain)
            .field("dir", &self.dir)
            .field("sync", &self.sync)
            .field("segment_bytes", &self.segment_bytes)
            .finish_non_exhaustive()
    }
}

impl DomainWal {
    /// Opens (creating if needed) the WAL for `domain` under
    /// `config.dir/<domain>/`, **replays its tail** into `store` through
    /// the normal ingest path, and returns the append-ready WAL plus a
    /// replay report.
    ///
    /// Rows at or below the store's current accepted sequence (already
    /// restored from the snapshot) are skipped; a row that would skip
    /// *ahead* of the store (a deleted or missing segment) and any
    /// mid-log damage fail with [`io::ErrorKind::InvalidData`]. A torn
    /// final record is truncated with a warning on stderr — an
    /// interrupted append must never stop the boot.
    ///
    /// `meta` is validated against (or, for a fresh directory, written
    /// to) the domain's [`META_FILE`].
    pub fn open(
        config: &WalConfig,
        domain: &str,
        meta: &WalDomainMeta,
        store: &ShardedStore,
    ) -> io::Result<(DomainWal, ReplayReport)> {
        let dir = config.dir.join(domain);
        std::fs::create_dir_all(&dir)?;
        let meta_path = dir.join(META_FILE);
        if meta_path.exists() {
            let text = std::fs::read_to_string(&meta_path)?;
            let on_disk: WalDomainMeta = serde_json::from_str(&text)
                .map_err(|e| invalid(format!("{}: bad WAL meta: {e}", meta_path.display())))?;
            if &on_disk != meta {
                return Err(invalid(format!(
                    "{}: WAL was written by a `{}` domain with {} shards, but the server \
                     configures `{}` with {} shards",
                    meta_path.display(),
                    on_disk.kind,
                    on_disk.shards,
                    meta.kind,
                    meta.shards
                )));
            }
        } else {
            std::fs::write(
                &meta_path,
                serde_json::to_string(meta)
                    .map_err(|e| invalid(format!("encode WAL meta: {e}")))?,
            )?;
        }

        let report = replay_segments(&dir, domain, store)?;

        // Open the newest segment for append, or start the first one at
        // the next sequence the store will mint.
        let segments = list_segments(&dir)?;
        let (path, file) = match segments.last() {
            Some((_, path)) => {
                let file = OpenOptions::new().append(true).open(path)?;
                (path.clone(), file)
            }
            None => {
                let path = dir.join(segment_name(store.accepted_seq() + 1));
                let file = OpenOptions::new()
                    .create_new(true)
                    .append(true)
                    .open(&path)?;
                (path, file)
            }
        };
        let written = file.metadata()?.len();
        let wal = DomainWal {
            domain: domain.to_owned(),
            dir,
            sync: config.sync,
            segment_bytes: config.segment_bytes.max(1),
            hook: config.fault_hook.clone(),
            inner: Mutex::new(WalInner {
                file,
                path,
                written,
                dirty: false,
                last_sync: Instant::now(),
                backlog: VecDeque::new(),
                wedged: false,
            }),
            appends: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            replayed_rows: AtomicU64::new(report.replayed_rows),
            degraded: AtomicBool::new(false),
            obs: OnceLock::new(),
        };
        Ok((wal, report))
    }

    /// The domain this WAL belongs to.
    pub fn domain(&self) -> &str {
        &self.domain
    }

    /// Attaches metric handles (idempotent — the first attachment wins).
    /// Called by the server once the registry exists; a WAL used without
    /// attachment (unit tests) simply records nothing.
    pub fn attach_obs(&self, obs: WalObs) {
        let _ = self.obs.set(obs);
    }

    fn check_hook(&self, op: WalOp) -> io::Result<()> {
        if let Some(hook) = &self.hook {
            if let Some(err) = hook(op) {
                return Err(err);
            }
        }
        Ok(())
    }

    /// Appends one accepted batch as a single framed record. Called by
    /// the store's batch ingest **while the ingest-order lock is held**,
    /// which is exactly what guarantees record order equals sequence
    /// order; the write itself is buffered by the OS — call
    /// [`DomainWal::sync_for_ack`] (after releasing the store lock)
    /// before acking the client.
    ///
    /// On failure the frame is **kept** in the backlog (the store has
    /// already consumed its sequence numbers and cannot un-ingest, so
    /// dropping it would gap the log): this and every later append
    /// re-attempt the queued frames, in order, before writing anything
    /// newer — the on-disk log is always a gap-free prefix of the
    /// accepted sequence. The WAL reports [`DomainWal::degraded`] until
    /// the backlog drains.
    pub fn append_batch(&self, first_seq: u64, rows: &[LogRecord]) -> io::Result<()> {
        let frame = encode_record(&WalRecord {
            domain: self.domain.clone(),
            first_seq,
            rows: rows.to_vec(),
        });
        let mut inner = self.inner.locked();
        inner.backlog.push_back((first_seq, frame));
        let result = self.drain_backlog_locked(&mut inner);
        self.note_drain(&inner, &result);
        result
    }

    /// Re-journals every queued failed-append frame without adding a new
    /// one — the ack path for a **duplicate-only** batch (the retry of a
    /// batch whose append failed deduplicates against the rows already
    /// in memory, so no journal callback runs; acking it without this
    /// flush would cover rows the WAL does not hold). A no-op when the
    /// backlog is empty.
    pub fn flush_backlog(&self) -> io::Result<()> {
        let mut inner = self.inner.locked();
        if inner.backlog.is_empty() {
            return Ok(());
        }
        let result = self.drain_backlog_locked(&mut inner);
        self.note_drain(&inner, &result);
        result
    }

    /// Whether failed-append frames are still queued for re-journal.
    pub fn has_backlog(&self) -> bool {
        !self.inner.locked().backlog.is_empty()
    }

    /// Writes the queued frames front-first, stopping (and requeueing
    /// the failed frame) on the first error so sequence order on disk is
    /// never violated.
    fn drain_backlog_locked(&self, inner: &mut WalInner) -> io::Result<()> {
        while let Some((first_seq, frame)) = inner.backlog.pop_front() {
            let started = Instant::now();
            if let Err(e) = self.append_locked(inner, first_seq, &frame) {
                inner.backlog.push_front((first_seq, frame));
                return Err(e);
            }
            if let Some(obs) = self.obs.get() {
                obs.append_seconds.record_duration(started.elapsed());
            }
            self.appends.fetch_add(1, Ordering::Relaxed);
            self.bytes.fetch_add(frame.len() as u64, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Updates the degraded flag and backlog gauge (and logs) after a
    /// backlog drain.
    fn note_drain(&self, inner: &WalInner, result: &io::Result<()>) {
        if let Some(obs) = self.obs.get() {
            obs.backlog_depth.set(inner.backlog.len() as i64);
        }
        match result {
            Ok(()) => self.degraded.store(false, Ordering::Relaxed),
            Err(e) => {
                crate::log_warn!(
                    "wal",
                    "{}: append failed: {e} ({} batch(es) queued for re-journal)",
                    self.domain,
                    inner.backlog.len()
                );
                self.degraded.store(true, Ordering::Relaxed);
            }
        }
    }

    fn append_locked(&self, inner: &mut WalInner, first_seq: u64, frame: &[u8]) -> io::Result<()> {
        if inner.wedged {
            return Err(io::Error::other(
                "WAL wedged: a partial append could not be truncated away; \
                 restart the server to recover (the tail will be truncated at boot)",
            ));
        }
        if inner.written >= self.segment_bytes && inner.written > 0 {
            self.rotate_locked(inner, first_seq)?;
        }
        self.check_hook(WalOp::Append)?;
        if let Err(e) = inner.file.write_all(frame) {
            // An unknown number of the frame's bytes may have reached
            // the file; cut back to the last record boundary so the
            // re-journal appends cleanly. If even that fails, stop
            // appending entirely — the garbage then stays a torn *tail*
            // (truncated at the next boot) instead of gaining valid
            // records behind it (mid-log corruption, which refuses to
            // boot).
            if inner.file.set_len(inner.written).is_err() {
                inner.wedged = true;
            }
            return Err(e);
        }
        inner.written += frame.len() as u64;
        inner.dirty = true;
        Ok(())
    }

    /// Seals the active segment and opens a fresh one whose name records
    /// `next_seq` as its first sequence. The sealed file is fsync'd
    /// **regardless of the sync policy** — compaction's delete trusts a
    /// sealed segment's contents reached disk, and
    /// [`WalSyncPolicy::Never`] only waives the per-ack sync, not seals.
    fn rotate_locked(&self, inner: &mut WalInner, next_seq: u64) -> io::Result<()> {
        if inner.dirty {
            let started = Instant::now();
            self.check_hook(WalOp::Sync)?;
            inner.file.sync_data()?;
            if let Some(obs) = self.obs.get() {
                obs.fsync_seconds.record_duration(started.elapsed());
            }
            inner.dirty = false;
            inner.last_sync = Instant::now();
            self.fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        let path = self.dir.join(segment_name(next_seq));
        let file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(&path)?;
        inner.file = file;
        inner.path = path;
        inner.written = 0;
        inner.dirty = false;
        Ok(())
    }

    /// The fsync backing an ack, per policy: `always` syncs now,
    /// `interval:<ms>` syncs when the interval has elapsed since the
    /// last sync, `never` returns immediately. Call after the store's
    /// ingest lock is released and before writing the HTTP response.
    pub fn sync_for_ack(&self) -> io::Result<()> {
        match self.sync {
            WalSyncPolicy::Never => Ok(()),
            WalSyncPolicy::Always => self.sync_now(),
            WalSyncPolicy::IntervalMs(ms) => {
                let due = {
                    let inner = self.inner.locked();
                    inner.dirty && inner.last_sync.elapsed() >= Duration::from_millis(ms)
                };
                if due {
                    self.sync_now()
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Unconditional fsync of the active segment (shutdown, tests).
    pub fn sync_now(&self) -> io::Result<()> {
        let mut inner = self.inner.locked();
        if !inner.dirty {
            return Ok(());
        }
        let started = Instant::now();
        let result = self
            .check_hook(WalOp::Sync)
            .and_then(|()| inner.file.sync_data());
        match &result {
            Ok(()) => {
                if let Some(obs) = self.obs.get() {
                    obs.fsync_seconds.record_duration(started.elapsed());
                }
                inner.dirty = false;
                inner.last_sync = Instant::now();
                self.fsyncs.fetch_add(1, Ordering::Relaxed);
                // Still degraded while frames await re-journal: the
                // acked prefix just synced, but the store holds rows the
                // WAL doesn't yet.
                if inner.backlog.is_empty() {
                    self.degraded.store(false, Ordering::Relaxed);
                }
            }
            Err(e) => {
                crate::log_warn!("wal", "{}: fsync failed: {e}", self.domain);
                self.degraded.store(true, Ordering::Relaxed);
            }
        }
        result
    }

    /// Seals the active segment now (compaction wants the whole log
    /// foldable): drains any failed-append backlog, syncs the segment
    /// (`rotate_locked` always syncs a dirty seal), and
    /// opens a fresh segment starting at `next_seq`. A no-op when the
    /// active segment is empty.
    pub fn seal_active(&self, next_seq: u64) -> io::Result<()> {
        let mut inner = self.inner.locked();
        let result = self.drain_backlog_locked(&mut inner).and_then(|()| {
            if inner.written == 0 {
                return Ok(());
            }
            self.rotate_locked(&mut inner, next_seq)
        });
        // Conservative flag maintenance: a failed seal degrades, but a
        // successful one leaves clearing to the next append/sync (the
        // paths that know whether the backlog is empty).
        if result.is_err() {
            self.degraded.store(true, Ordering::Relaxed);
        }
        result
    }

    /// Whether any sealed (non-active) segments exist — the background
    /// compactor's trigger condition.
    pub fn has_sealed_segments(&self) -> bool {
        let active = self.inner.locked().path.clone();
        list_segments(&self.dir)
            .map(|segs| segs.iter().any(|(_, p)| p != &active))
            .unwrap_or(false)
    }

    /// Deletes sealed segments wholly covered by a snapshot through
    /// sequence `covered_seq`, returning how many were removed. A sealed
    /// segment's coverage ends where the next segment begins, so segment
    /// `i` is deletable iff segment `i+1` starts at or below
    /// `covered_seq + 1`; the active segment is never deleted.
    pub fn delete_segments_covered_by(&self, covered_seq: u64) -> io::Result<usize> {
        let active = self.inner.locked().path.clone();
        let segments = list_segments(&self.dir)?;
        let mut deleted = 0;
        for pair in segments.windows(2) {
            // analyzer: allow(panic-index) -- windows(2) yields exactly-2-element slices
            let (_, path) = &pair[0];
            // analyzer: allow(panic-index) -- windows(2) yields exactly-2-element slices
            let (next_first, _) = &pair[1];
            if path != &active && *next_first <= covered_seq + 1 {
                std::fs::remove_file(path)?;
                deleted += 1;
            }
        }
        Ok(deleted)
    }

    /// `(appends, fsyncs, bytes, replayed_rows)` counters for `/stats`.
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        (
            self.appends.load(Ordering::Relaxed),
            self.fsyncs.load(Ordering::Relaxed),
            self.bytes.load(Ordering::Relaxed),
            self.replayed_rows.load(Ordering::Relaxed),
        )
    }

    /// Whether the last append or fsync failed (cleared by the next
    /// success). Surfaces as `/healthz` 503.
    pub fn degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Replays every segment of a domain WAL directory into `store` (the
/// recovery half of [`DomainWal::open`], separated for testability).
fn replay_segments(dir: &Path, domain: &str, store: &ShardedStore) -> io::Result<ReplayReport> {
    let segments = list_segments(dir)?;
    let mut report = ReplayReport {
        segments: segments.len() as u64,
        ..ReplayReport::default()
    };
    let last_index = segments.len().saturating_sub(1);
    for (i, (_, path)) in segments.iter().enumerate() {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        let (records, good_len, issue) = decode_segment(&bytes);
        match issue {
            None => {}
            Some(SegmentIssue::TornTail { offset }) if i == last_index => {
                let torn = bytes.len() - good_len;
                crate::log_warn!(
                    "wal",
                    "{}: torn final record at byte {offset} ({torn} bytes) — \
                     truncating (an interrupted append; the batch was never acked)",
                    path.display()
                );
                let file = OpenOptions::new().write(true).open(path)?;
                file.set_len(good_len as u64)?;
                file.sync_data()?;
                report.truncated_bytes += torn as u64;
            }
            Some(SegmentIssue::TornTail { offset }) => {
                return Err(invalid(format!(
                    "{}: segment is truncated at byte {offset} but later segments exist — \
                     the WAL is missing acked data; refusing to boot",
                    path.display()
                )));
            }
            Some(SegmentIssue::Corrupt { offset, reason }) => {
                return Err(invalid(format!(
                    "{}: corrupt WAL record at byte {offset} ({reason}) with acked data \
                     after it; refusing to boot — restore the file or delete the WAL \
                     directory to accept the loss",
                    path.display()
                )));
            }
        }
        for rec in records {
            report.records += 1;
            if rec.domain != domain {
                return Err(invalid(format!(
                    "{}: record for domain `{}` found in the `{domain}` WAL",
                    path.display(),
                    rec.domain
                )));
            }
            for (i, row) in rec.rows.iter().enumerate() {
                let seq = rec.first_seq + i as u64;
                let current = store.accepted_seq();
                if seq <= current {
                    continue; // already restored from the snapshot
                }
                if seq != current + 1 {
                    return Err(invalid(format!(
                        "{}: WAL jumps to sequence {seq} but the store is at {current} — \
                         a segment covering the gap is missing",
                        path.display()
                    )));
                }
                if matches!(store.replay(row), IngestOutcome::Duplicate(_)) {
                    return Err(invalid(format!(
                        "{}: WAL row at sequence {seq} replayed as a duplicate — the WAL \
                         disagrees with the restored snapshot",
                        path.display()
                    )));
                }
                report.replayed_rows += 1;
            }
        }
    }
    Ok(report)
}

/// Domain names with a WAL directory under `root` (for boot-time
/// discovery of domains that exist only in the WAL). Missing roots list
/// as empty — a fresh server simply has no WAL yet.
pub fn wal_domains(root: &Path) -> io::Result<Vec<String>> {
    if !root.exists() {
        return Ok(Vec::new());
    }
    let mut names = Vec::new();
    for entry in std::fs::read_dir(root)? {
        let entry = entry?;
        if entry.file_type()?.is_dir() && entry.path().join(META_FILE).exists() {
            if let Some(name) = entry.file_name().to_str() {
                names.push(name.to_owned());
            }
        }
    }
    names.sort();
    Ok(names)
}

/// Reads a domain's [`META_FILE`] under `root/<domain>/`.
pub fn read_meta(root: &Path, domain: &str) -> io::Result<WalDomainMeta> {
    let path = root.join(domain).join(META_FILE);
    let text = std::fs::read_to_string(&path)?;
    serde_json::from_str(&text)
        .map_err(|e| invalid(format!("{}: bad WAL meta: {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ltm-wal-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    fn row(e: &str, value: Option<f64>) -> LogRecord {
        LogRecord {
            entity: e.into(),
            attr: "a".into(),
            source: "s".into(),
            value,
        }
    }

    fn meta() -> WalDomainMeta {
        WalDomainMeta {
            kind: "boolean".into(),
            shards: 2,
        }
    }

    fn config(dir: &Path) -> WalConfig {
        WalConfig::new(dir)
    }

    #[test]
    fn crc32_matches_the_standard_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn record_round_trips_through_the_framing() {
        let rec = WalRecord {
            domain: "default".into(),
            first_seq: 7,
            rows: vec![row("e0", None), row("e1", Some(0.25)), row("", Some(-0.0))],
        };
        let frame = encode_record(&rec);
        let (records, good, issue) = decode_segment(&frame);
        assert_eq!(issue, None);
        assert_eq!(good, frame.len());
        assert_eq!(records, vec![rec]);
    }

    #[test]
    fn long_strings_survive_the_u32_length_prefix() {
        // Entity names can exceed u16::MAX bytes (HTTP bodies go to
        // 16 MiB) — the length prefix must be wide enough.
        let big = "x".repeat(70_000);
        let rec = WalRecord {
            domain: "default".into(),
            first_seq: 1,
            rows: vec![LogRecord {
                entity: big.clone(),
                attr: big.clone(),
                source: big,
                value: None,
            }],
        };
        let frame = encode_record(&rec);
        let (records, _, issue) = decode_segment(&frame);
        assert_eq!(issue, None);
        assert_eq!(records[0].rows[0].entity.len(), 70_000);
    }

    #[test]
    fn torn_tail_at_every_prefix_decodes_the_clean_records() {
        let r1 = WalRecord {
            domain: "d".into(),
            first_seq: 1,
            rows: vec![row("e0", None)],
        };
        let r2 = WalRecord {
            domain: "d".into(),
            first_seq: 2,
            rows: vec![row("e1", None)],
        };
        let mut bytes = encode_record(&r1);
        let first_len = bytes.len();
        bytes.extend_from_slice(&encode_record(&r2));
        // Every strict prefix that cuts into the second frame must yield
        // record 1 plus a torn tail at the second frame's start.
        for cut in first_len + 1..bytes.len() {
            let (records, good, issue) = decode_segment(&bytes[..cut]);
            assert_eq!(records.len(), 1, "cut at {cut}");
            assert_eq!(good, first_len, "cut at {cut}");
            assert_eq!(
                issue,
                Some(SegmentIssue::TornTail { offset: first_len }),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn final_frame_checksum_failure_reads_as_torn() {
        // A fully-written length with a partially persisted payload is
        // still a torn append when nothing follows it.
        let mut bytes = encode_record(&WalRecord {
            domain: "d".into(),
            first_seq: 1,
            rows: vec![row("e0", None)],
        });
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        let (records, good, issue) = decode_segment(&bytes);
        assert!(records.is_empty());
        assert_eq!(good, 0);
        assert_eq!(issue, Some(SegmentIssue::TornTail { offset: 0 }));
    }

    #[test]
    fn mid_log_damage_is_corruption_not_a_torn_tail() {
        let mut bytes = encode_record(&WalRecord {
            domain: "d".into(),
            first_seq: 1,
            rows: vec![row("e0", None)],
        });
        let flip = bytes.len() - 1; // inside record 1's payload
        bytes.extend_from_slice(&encode_record(&WalRecord {
            domain: "d".into(),
            first_seq: 2,
            rows: vec![row("e1", None)],
        }));
        bytes[flip] ^= 0xFF;
        let (records, _, issue) = decode_segment(&bytes);
        assert!(records.is_empty());
        assert!(
            matches!(issue, Some(SegmentIssue::Corrupt { offset: 0, .. })),
            "{issue:?}"
        );
    }

    #[test]
    fn implausible_length_is_corruption() {
        let mut bytes = vec![0u8; 16];
        bytes[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        let (_, _, issue) = decode_segment(&bytes);
        assert!(
            matches!(issue, Some(SegmentIssue::Corrupt { .. })),
            "{issue:?}"
        );
    }

    #[test]
    fn sync_policy_parses_and_displays() {
        assert_eq!("always".parse(), Ok(WalSyncPolicy::Always));
        assert_eq!("never".parse(), Ok(WalSyncPolicy::Never));
        assert_eq!("interval:250".parse(), Ok(WalSyncPolicy::IntervalMs(250)));
        assert_eq!("250".parse(), Ok(WalSyncPolicy::IntervalMs(250)));
        assert!("sometimes".parse::<WalSyncPolicy>().is_err());
        assert_eq!(WalSyncPolicy::IntervalMs(250).to_string(), "interval:250");
    }

    #[test]
    fn append_replay_round_trip_through_a_store() {
        let dir = temp_dir("round-trip");
        let store = ShardedStore::new(2);
        let (wal, report) = DomainWal::open(&config(&dir), "default", &meta(), &store).unwrap();
        assert_eq!(report, ReplayReport::default());
        // Two batches through the real batch-ingest path.
        store
            .ingest_batch(
                &[row("e0", None), row("e1", None)],
                Some(&|s, r| wal.append_batch(s, r)),
            )
            .unwrap();
        store
            .ingest_batch(&[row("e2", None)], Some(&|s, r| wal.append_batch(s, r)))
            .unwrap();
        wal.sync_now().unwrap();
        let (appends, _, bytes, _) = wal.counters();
        assert_eq!(appends, 2);
        assert!(bytes > 0);

        let recovered = ShardedStore::new(2);
        let (wal2, report) =
            DomainWal::open(&config(&dir), "default", &meta(), &recovered).unwrap();
        assert_eq!(report.replayed_rows, 3);
        assert_eq!(report.truncated_bytes, 0);
        assert_eq!(recovered.accepted_seq(), store.accepted_seq());
        assert_eq!(recovered.source_names(), store.source_names());
        assert_eq!(recovered.pending(), 3, "replayed rows re-arm the refit");
        drop(wal2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_final_record_truncates_and_boots() {
        let dir = temp_dir("torn");
        let store = ShardedStore::new(1);
        let (wal, _) = DomainWal::open(&config(&dir), "d", &meta_for("d"), &store).unwrap();
        store
            .ingest_batch(&[row("e0", None)], Some(&|s, r| wal.append_batch(s, r)))
            .unwrap();
        wal.sync_now().unwrap();
        // Simulate a crash mid-append: half a frame at the tail.
        let seg = list_segments(&dir.join("d")).unwrap().pop().unwrap().1;
        let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(&[42, 0, 0, 0, 1, 2, 3]).unwrap();
        drop(f);

        let recovered = ShardedStore::new(1);
        let (_, report) = DomainWal::open(&config(&dir), "d", &meta_for("d"), &recovered).unwrap();
        assert_eq!(report.replayed_rows, 1);
        assert_eq!(report.truncated_bytes, 7);
        assert_eq!(recovered.accepted_seq(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn meta_for(_domain: &str) -> WalDomainMeta {
        WalDomainMeta {
            kind: "boolean".into(),
            shards: 1,
        }
    }

    #[test]
    fn mid_log_corruption_refuses_to_boot() {
        let dir = temp_dir("corrupt");
        let store = ShardedStore::new(1);
        let (wal, _) = DomainWal::open(&config(&dir), "d", &meta_for("d"), &store).unwrap();
        for e in ["e0", "e1"] {
            store
                .ingest_batch(&[row(e, None)], Some(&|s, r| wal.append_batch(s, r)))
                .unwrap();
        }
        wal.sync_now().unwrap();
        let seg = list_segments(&dir.join("d")).unwrap().pop().unwrap().1;
        let mut bytes = std::fs::read(&seg).unwrap();
        bytes[10] ^= 0xFF; // inside the first record, second record follows
        std::fs::write(&seg, bytes).unwrap();

        let err =
            DomainWal::open(&config(&dir), "d", &meta_for("d"), &ShardedStore::new(1)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("corrupt WAL record"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_seals_segments_and_compaction_deletes_covered_ones() {
        let dir = temp_dir("rotate");
        let store = ShardedStore::new(1);
        let mut cfg = config(&dir);
        cfg.segment_bytes = 1; // rotate on every batch after the first
        let (wal, _) = DomainWal::open(&cfg, "d", &meta_for("d"), &store).unwrap();
        for e in ["e0", "e1", "e2"] {
            store
                .ingest_batch(&[row(e, None)], Some(&|s, r| wal.append_batch(s, r)))
                .unwrap();
        }
        assert!(wal.has_sealed_segments());
        assert_eq!(list_segments(&dir.join("d")).unwrap().len(), 3);

        // A snapshot covering sequence 1 frees only the first segment.
        assert_eq!(wal.delete_segments_covered_by(1).unwrap(), 1);
        // Covering everything frees the rest of the sealed ones; the
        // active segment survives.
        assert_eq!(wal.delete_segments_covered_by(3).unwrap(), 1);
        assert_eq!(list_segments(&dir.join("d")).unwrap().len(), 1);
        assert!(!wal.has_sealed_segments());

        // Recovery from snapshot(2 rows) + remaining tail still works.
        let recovered = ShardedStore::new(1);
        recovered.ingest("e0", "a", "s");
        recovered.ingest("e1", "a", "s");
        let (_, report) = DomainWal::open(&cfg, "d", &meta_for("d"), &recovered).unwrap();
        assert_eq!(report.replayed_rows, 1, "only the tail past the snapshot");
        assert_eq!(recovered.accepted_seq(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_deleted_segment_gap_is_detected() {
        let dir = temp_dir("gap");
        let store = ShardedStore::new(1);
        let mut cfg = config(&dir);
        cfg.segment_bytes = 1;
        let (wal, _) = DomainWal::open(&cfg, "d", &meta_for("d"), &store).unwrap();
        for e in ["e0", "e1", "e2"] {
            store
                .ingest_batch(&[row(e, None)], Some(&|s, r| wal.append_batch(s, r)))
                .unwrap();
        }
        drop(wal);
        // Remove the middle segment: recovery must refuse, not silently
        // skip sequence 2.
        let segs = list_segments(&dir.join("d")).unwrap();
        std::fs::remove_file(&segs[1].1).unwrap();
        let err = DomainWal::open(&cfg, "d", &meta_for("d"), &ShardedStore::new(1)).unwrap_err();
        assert!(err.to_string().contains("jumps to sequence"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_hook_fails_appends_and_sets_degraded() {
        let dir = temp_dir("hook");
        let fail = Arc::new(AtomicBool::new(false));
        let hook_flag = Arc::clone(&fail);
        let mut cfg = config(&dir);
        cfg.fault_hook = Some(Arc::new(move |op| {
            (op == WalOp::Append && hook_flag.load(Ordering::Relaxed))
                .then(|| io::Error::other("injected append failure"))
        }));
        let store = ShardedStore::new(1);
        let (wal, _) = DomainWal::open(&cfg, "d", &meta_for("d"), &store).unwrap();
        store
            .ingest_batch(&[row("e0", None)], Some(&|s, r| wal.append_batch(s, r)))
            .unwrap();
        assert!(!wal.degraded());

        fail.store(true, Ordering::Relaxed);
        let err = store
            .ingest_batch(&[row("e1", None)], Some(&|s, r| wal.append_batch(s, r)))
            .unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
        assert!(wal.degraded(), "a failed append must mark the WAL degraded");
        assert!(wal.has_backlog(), "the failed frame must stay queued");

        fail.store(false, Ordering::Relaxed);
        store
            .ingest_batch(&[row("e2", None)], Some(&|s, r| wal.append_batch(s, r)))
            .unwrap();
        assert!(!wal.degraded(), "a successful append clears the flag");
        assert!(!wal.has_backlog(), "the backlog drained");
        let (appends, _, _, _) = wal.counters();
        assert_eq!(appends, 3, "e1's frame was re-journaled ahead of e2's");

        // The whole point: the log has no sequence gap, so a restart
        // boots and recovers every row — including e1, whose own append
        // failed but which was re-journaled by e2's.
        let recovered = ShardedStore::new(1);
        let (_, report) = DomainWal::open(&config(&dir), "d", &meta_for("d"), &recovered).unwrap();
        assert_eq!(report.replayed_rows, 3);
        assert_eq!(recovered.accepted_seq(), store.accepted_seq());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_only_retry_flushes_the_backlog_before_acking() {
        // The retry of a failed batch dedupes against the rows left in
        // memory (accepted == 0), so no journal callback runs — the ack
        // path flushes the backlog explicitly instead. While writes
        // still fail, the flush must fail too (no ack for rows the WAL
        // doesn't hold).
        let dir = temp_dir("retry-flush");
        let fail = Arc::new(AtomicBool::new(false));
        let hook_flag = Arc::clone(&fail);
        let mut cfg = config(&dir);
        cfg.fault_hook = Some(Arc::new(move |op| {
            (op == WalOp::Append && hook_flag.load(Ordering::Relaxed))
                .then(|| io::Error::other("injected append failure"))
        }));
        let store = ShardedStore::new(1);
        let (wal, _) = DomainWal::open(&cfg, "d", &meta_for("d"), &store).unwrap();

        fail.store(true, Ordering::Relaxed);
        store
            .ingest_batch(&[row("e0", None)], Some(&|s, r| wal.append_batch(s, r)))
            .unwrap_err();
        // The retry is duplicate-only; its journal callback never runs.
        let outcome = store
            .ingest_batch(&[row("e0", None)], Some(&|s, r| wal.append_batch(s, r)))
            .unwrap();
        assert_eq!(outcome.accepted, 0);
        assert_eq!(outcome.duplicates, 1);
        // With writes still failing, the flush refuses the ack.
        wal.flush_backlog().unwrap_err();
        assert!(wal.degraded());

        // Once writes recover, the flush re-journals and the ack is
        // honest: a restart replays the row.
        fail.store(false, Ordering::Relaxed);
        wal.flush_backlog().unwrap();
        wal.sync_now().unwrap();
        assert!(!wal.degraded());
        let recovered = ShardedStore::new(1);
        let (_, report) = DomainWal::open(&cfg, "d", &meta_for("d"), &recovered).unwrap();
        assert_eq!(report.replayed_rows, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_under_never_policy_still_syncs_sealed_segments() {
        // WalSyncPolicy::Never waives only the per-ack fsync; a sealed
        // (rotated) segment must still be synced so compaction can trust
        // its contents reached disk before deleting it.
        let dir = temp_dir("never-rotate");
        let store = ShardedStore::new(1);
        let mut cfg = config(&dir);
        cfg.sync = WalSyncPolicy::Never;
        cfg.segment_bytes = 1; // rotate on every batch after the first
        let (wal, _) = DomainWal::open(&cfg, "d", &meta_for("d"), &store).unwrap();
        for e in ["e0", "e1", "e2"] {
            store
                .ingest_batch(&[row(e, None)], Some(&|s, r| wal.append_batch(s, r)))
                .unwrap();
        }
        let (_, fsyncs, _, _) = wal.counters();
        assert_eq!(fsyncs, 2, "each of the two rotations sealed with an fsync");
        // sync_for_ack stays a no-op under `never`.
        wal.sync_for_ack().unwrap();
        let (_, fsyncs, _, _) = wal.counters();
        assert_eq!(fsyncs, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn meta_mismatch_is_rejected() {
        let dir = temp_dir("meta");
        let store = ShardedStore::new(2);
        let (wal, _) = DomainWal::open(&config(&dir), "default", &meta(), &store).unwrap();
        drop(wal);
        let other = WalDomainMeta {
            kind: "real_valued".into(),
            shards: 2,
        };
        let err =
            DomainWal::open(&config(&dir), "default", &other, &ShardedStore::new(2)).unwrap_err();
        assert!(err.to_string().contains("real_valued"), "{err}");
        assert_eq!(wal_domains(&dir).unwrap(), vec!["default".to_string()]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
