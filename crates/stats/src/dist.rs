//! Distribution samplers and densities.
//!
//! The paper's generative process (Section 4) draws source quality from Beta
//! distributions, truth labels from Bernoullis, and claim observations from
//! Bernoullis parameterised by source quality. The synthetic stress test
//! (Section 6.1) runs that process forward, so the workspace needs reliable
//! samplers for all of them. Everything here takes `&mut impl Rng` so the
//! caller owns determinism.

use rand::Rng;

use crate::special::{ln_beta, ln_gamma};

/// A Bernoulli distribution with success probability `p`.
///
/// A thin wrapper kept for symmetry with the other distributions and so the
/// probability is validated exactly once.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Creates a Bernoulli distribution.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]` or is NaN.
    pub fn new(p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "Bernoulli: p must lie in [0, 1], got {p}"
        );
        Self { p }
    }

    /// The success probability.
    #[inline]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Draws a sample.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.gen::<f64>() < self.p
    }

    /// Probability mass of an outcome.
    #[inline]
    pub fn pmf(&self, outcome: bool) -> f64 {
        if outcome {
            self.p
        } else {
            1.0 - self.p
        }
    }
}

/// A Gamma distribution with shape `k` and scale `θ` (mean `kθ`).
///
/// Sampling uses Marsaglia & Tsang's squeeze method for `k ≥ 1` and the
/// boost `U^{1/k}` trick for `k < 1`. Gamma is the workhorse behind the
/// [`Beta`] sampler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Creates a Gamma distribution.
    ///
    /// # Panics
    ///
    /// Panics if `shape` or `scale` is not strictly positive.
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(shape > 0.0, "Gamma: shape must be > 0, got {shape}");
        assert!(scale > 0.0, "Gamma: scale must be > 0, got {scale}");
        Self { shape, scale }
    }

    /// The shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The scale parameter `θ`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Mean `kθ`.
    pub fn mean(&self) -> f64 {
        self.shape * self.scale
    }

    /// Draws a sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.shape < 1.0 {
            // Boost: if X ~ Gamma(k+1) and U ~ Uniform(0,1) then
            // X·U^{1/k} ~ Gamma(k).
            let boosted = Gamma::new(self.shape + 1.0, self.scale).sample(rng);
            let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            return boosted * u.powf(1.0 / self.shape);
        }
        // Marsaglia & Tsang (2000).
        let d = self.shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            // Standard normal via Box–Muller (avoids a dependency on
            // rand_distr; two uniforms per attempt is fine at our scales).
            let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let u2: f64 = rng.gen();
            let x = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            let v = 1.0 + c * x;
            if v <= 0.0 {
                continue;
            }
            let v = v * v * v;
            let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
                return d * v * self.scale;
            }
        }
    }

    /// Natural log of the density at `x`.
    pub fn ln_pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return f64::NEG_INFINITY;
        }
        (self.shape - 1.0) * x.ln()
            - x / self.scale
            - ln_gamma(self.shape)
            - self.shape * self.scale.ln()
    }
}

/// A Beta distribution with parameters `(a, b)` (mean `a / (a + b)`).
///
/// In the Latent Truth Model this is the prior over source false-positive
/// rate (`φ⁰ ~ Beta(α₀₁, α₀₀)`), source sensitivity (`φ¹ ~ Beta(α₁₁, α₁₀)`),
/// and fact prior truth probability (`θ ~ Beta(β₁, β₀)`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Beta {
    a: f64,
    b: f64,
}

impl Beta {
    /// Creates a Beta distribution.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is not strictly positive.
    pub fn new(a: f64, b: f64) -> Self {
        assert!(
            a > 0.0 && b > 0.0,
            "Beta: parameters must be > 0, got ({a}, {b})"
        );
        Self { a, b }
    }

    /// First shape parameter (prior "success"/true count).
    pub fn a(&self) -> f64 {
        self.a
    }

    /// Second shape parameter (prior "failure"/false count).
    pub fn b(&self) -> f64 {
        self.b
    }

    /// Mean `a / (a + b)`.
    pub fn mean(&self) -> f64 {
        self.a / (self.a + self.b)
    }

    /// Variance `ab / ((a+b)²(a+b+1))`.
    pub fn variance(&self) -> f64 {
        let s = self.a + self.b;
        self.a * self.b / (s * s * (s + 1.0))
    }

    /// Draws a sample via two Gamma variates.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let x = Gamma::new(self.a, 1.0).sample(rng);
        let y = Gamma::new(self.b, 1.0).sample(rng);
        // Clamp away from the boundary so downstream Bernoulli(φ) never sees
        // an exact 0/1 produced by floating-point underflow.
        (x / (x + y)).clamp(1e-12, 1.0 - 1e-12)
    }

    /// Natural log of the density at `x`.
    pub fn ln_pdf(&self, x: f64) -> f64 {
        if !(0.0..=1.0).contains(&x) {
            return f64::NEG_INFINITY;
        }
        (self.a - 1.0) * x.ln() + (self.b - 1.0) * (1.0 - x).ln() - ln_beta(self.a, self.b)
    }

    /// Cumulative distribution function at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        crate::special::beta_inc(self.a, self.b, x.clamp(0.0, 1.0))
    }
}

/// A Binomial distribution (`n` trials, success probability `p`).
///
/// Used by the dataset generators to draw per-entity fan-outs. Sampling is
/// by inversion for small `n` and by normal approximation with correction
/// for large `n`; at the workspace's scales (`n ≤ a few thousand`) direct
/// inversion is accurate and fast enough.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u32,
    p: f64,
}

impl Binomial {
    /// Creates a Binomial distribution.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn new(n: u32, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "Binomial: p must lie in [0, 1], got {p}"
        );
        Self { n, p }
    }

    /// Mean `np`.
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// Draws a sample by sequential Bernoulli trials for small `n`, or by
    /// mode-centred enumeration otherwise.
    ///
    /// Naive CDF inversion starting from `k = 0` underflows `(1−p)^n` for
    /// large `n`; enumerating outward from the mode keeps every term in
    /// range and terminates in `O(√(np(1−p)))` expected steps.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        if self.p == 0.0 {
            return 0;
        }
        if self.p == 1.0 {
            return self.n;
        }
        if self.n <= 64 {
            let mut k = 0;
            for _ in 0..self.n {
                if rng.gen::<f64>() < self.p {
                    k += 1;
                }
            }
            return k;
        }
        let n = self.n as f64;
        let mode = (((self.n + 1) as f64 * self.p).floor() as u32).min(self.n);
        let ln_pmf_mode =
            ln_gamma(n + 1.0) - ln_gamma(mode as f64 + 1.0) - ln_gamma(n - mode as f64 + 1.0)
                + mode as f64 * self.p.ln()
                + (n - mode as f64) * (1.0 - self.p).ln();
        // Enumerate outward from the mode, alternating sides; any fixed
        // enumeration order is a valid way to invert a uniform draw.
        let u: f64 = rng.gen();
        let ratio = self.p / (1.0 - self.p);
        let mut acc = ln_pmf_mode.exp();
        let mut pmf_lo = acc;
        let mut pmf_hi = acc;
        let mut lo = mode;
        let mut hi = mode;
        while acc < u && (lo > 0 || hi < self.n) {
            if hi < self.n {
                // pmf(k+1) = pmf(k) · (n−k)/(k+1) · p/(1−p)
                pmf_hi *= (self.n - hi) as f64 / (hi + 1) as f64 * ratio;
                hi += 1;
                acc += pmf_hi;
                if acc >= u {
                    return hi;
                }
            }
            if lo > 0 {
                // pmf(k−1) = pmf(k) · k/(n−k+1) · (1−p)/p
                pmf_lo *= lo as f64 / (self.n - lo + 1) as f64 / ratio;
                lo -= 1;
                acc += pmf_lo;
                if acc >= u {
                    return lo;
                }
            }
        }
        mode
    }
}

/// A categorical distribution over `0..k` defined by unnormalised weights.
///
/// Dataset generators use this for Zipf-like source-popularity and
/// author-count draws. Sampling is O(k) by linear scan, which is fine for
/// the small `k` used here; an alias table would be overkill.
#[derive(Debug, Clone, PartialEq)]
pub struct Categorical {
    cumulative: Vec<f64>,
}

impl Categorical {
    /// Creates a categorical distribution from unnormalised non-negative
    /// weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(
            !weights.is_empty(),
            "Categorical: weights must be non-empty"
        );
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut total = 0.0;
        for &w in weights {
            assert!(
                w >= 0.0 && w.is_finite(),
                "Categorical: weights must be finite and non-negative, got {w}"
            );
            total += w;
            cumulative.push(total);
        }
        assert!(total > 0.0, "Categorical: weights must not all be zero");
        Self { cumulative }
    }

    /// A Zipf-like categorical over `0..k` with exponent `s`
    /// (weight of rank `r` is `(r+1)^{−s}`).
    pub fn zipf(k: usize, s: f64) -> Self {
        assert!(k > 0, "Categorical::zipf: k must be > 0");
        let weights: Vec<f64> = (1..=k).map(|r| (r as f64).powf(-s)).collect();
        Self::new(&weights)
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the distribution has zero categories (never true by
    /// construction; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draws a category index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty by construction");
        let u: f64 = rng.gen::<f64>() * total;
        // Binary search for the first cumulative weight exceeding u.
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("weights are finite"))
        {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(0x5EED)
    }

    #[test]
    fn bernoulli_empirical_mean() {
        let mut r = rng();
        let d = Bernoulli::new(0.3);
        let n = 50_000;
        let hits = (0..n).filter(|_| d.sample(&mut r)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.01, "freq = {freq}");
    }

    #[test]
    fn bernoulli_pmf() {
        let d = Bernoulli::new(0.25);
        assert_eq!(d.pmf(true), 0.25);
        assert_eq!(d.pmf(false), 0.75);
    }

    #[test]
    #[should_panic(expected = "must lie in [0, 1]")]
    fn bernoulli_rejects_bad_p() {
        Bernoulli::new(1.5);
    }

    #[test]
    fn gamma_moments() {
        let mut r = rng();
        for &(shape, scale) in &[(0.5, 1.0), (2.0, 3.0), (9.0, 0.5)] {
            let d = Gamma::new(shape, scale);
            let n = 40_000;
            let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
            let mean = samples.iter().sum::<f64>() / n as f64;
            let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
            let (em, ev) = (shape * scale, shape * scale * scale);
            assert!((mean - em).abs() / em < 0.05, "mean {mean} vs {em}");
            assert!((var - ev).abs() / ev < 0.15, "var {var} vs {ev}");
        }
    }

    #[test]
    fn gamma_samples_positive() {
        let mut r = rng();
        let d = Gamma::new(0.1, 2.0);
        for _ in 0..2_000 {
            assert!(d.sample(&mut r) > 0.0);
        }
    }

    #[test]
    fn beta_moments_match_theory() {
        let mut r = rng();
        // The paper's own prior settings.
        for &(a, b) in &[(10.0, 90.0), (90.0, 10.0), (50.0, 50.0), (10.0, 10.0)] {
            let d = Beta::new(a, b);
            let n = 40_000;
            let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
            let mean = samples.iter().sum::<f64>() / n as f64;
            let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
            assert!(
                (mean - d.mean()).abs() < 0.01,
                "mean {mean} vs {}",
                d.mean()
            );
            assert!(
                (var - d.variance()).abs() < 0.01,
                "var {var} vs {}",
                d.variance()
            );
        }
    }

    #[test]
    fn beta_samples_in_open_unit_interval() {
        let mut r = rng();
        let d = Beta::new(0.5, 0.5);
        for _ in 0..5_000 {
            let x = d.sample(&mut r);
            assert!(x > 0.0 && x < 1.0);
        }
    }

    #[test]
    fn beta_cdf_matches_empirical() {
        let mut r = rng();
        let d = Beta::new(3.0, 7.0);
        let n = 40_000;
        let below = (0..n).filter(|_| d.sample(&mut r) < 0.3).count();
        let empirical = below as f64 / n as f64;
        assert!((empirical - d.cdf(0.3)).abs() < 0.01);
    }

    #[test]
    fn beta_ln_pdf_integrates_to_one() {
        // Crude trapezoid integration of exp(ln_pdf) over a grid.
        let d = Beta::new(2.5, 4.0);
        let n = 20_000;
        let mut acc = 0.0;
        for i in 0..n {
            let x = (i as f64 + 0.5) / n as f64;
            acc += d.ln_pdf(x).exp() / n as f64;
        }
        assert!((acc - 1.0).abs() < 1e-3, "integral = {acc}");
    }

    #[test]
    fn binomial_mean_small_and_large_n() {
        let mut r = rng();
        for &(n, p) in &[(10u32, 0.5), (500u32, 0.02), (2000u32, 0.7)] {
            let d = Binomial::new(n, p);
            let reps = 20_000;
            let mean = (0..reps).map(|_| d.sample(&mut r) as f64).sum::<f64>() / reps as f64;
            let em = d.mean();
            assert!(
                (mean - em).abs() < 0.05 * em.max(1.0),
                "n={n} p={p}: mean {mean} vs {em}"
            );
        }
    }

    #[test]
    fn binomial_degenerate_edges() {
        let mut r = rng();
        assert_eq!(Binomial::new(100, 0.0).sample(&mut r), 0);
        assert_eq!(Binomial::new(100, 1.0).sample(&mut r), 100);
    }

    #[test]
    fn categorical_respects_weights() {
        let mut r = rng();
        let d = Categorical::new(&[1.0, 0.0, 3.0]);
        let n = 30_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[d.sample(&mut r)] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight category must never be drawn");
        let f0 = counts[0] as f64 / n as f64;
        let f2 = counts[2] as f64 / n as f64;
        assert!((f0 - 0.25).abs() < 0.02, "f0 = {f0}");
        assert!((f2 - 0.75).abs() < 0.02, "f2 = {f2}");
    }

    #[test]
    fn categorical_zipf_is_monotone() {
        let mut r = rng();
        let d = Categorical::zipf(10, 1.2);
        let n = 60_000;
        let mut counts = [0usize; 10];
        for _ in 0..n {
            counts[d.sample(&mut r)] += 1;
        }
        // Rank 0 should dominate rank 9 heavily.
        assert!(counts[0] > counts[9] * 5);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn categorical_rejects_empty() {
        Categorical::new(&[]);
    }
}
