//! Simple ordinary least squares.
//!
//! Figure 6 of the paper fits a straight line to (number of claims, LTM
//! runtime) pairs and reports an `R²` of 0.9913 as evidence of linear
//! scaling. This module reproduces that analysis.

/// A fitted line `y = slope · x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Line {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
}

impl Line {
    /// Evaluates the line at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Result of a simple (one-predictor) ordinary-least-squares fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimpleOls {
    /// The fitted line.
    pub line: Line,
    /// Coefficient of determination `R² ∈ [0, 1]` (1 = perfect fit).
    pub r_squared: f64,
    /// Number of points fitted.
    pub n: usize,
}

impl SimpleOls {
    /// Fits `y ≈ slope · x + intercept` by least squares.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths, fewer than two points,
    /// or all `x` values are identical (the slope is then undefined).
    pub fn fit(xs: &[f64], ys: &[f64]) -> Self {
        assert_eq!(xs.len(), ys.len(), "SimpleOls::fit: length mismatch");
        assert!(xs.len() >= 2, "SimpleOls::fit: need at least two points");
        let n = xs.len() as f64;
        let mean_x = xs.iter().sum::<f64>() / n;
        let mean_y = ys.iter().sum::<f64>() / n;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        let mut syy = 0.0;
        for (&x, &y) in xs.iter().zip(ys) {
            let dx = x - mean_x;
            let dy = y - mean_y;
            sxx += dx * dx;
            sxy += dx * dy;
            syy += dy * dy;
        }
        assert!(sxx > 0.0, "SimpleOls::fit: all x values identical");
        let slope = sxy / sxx;
        let intercept = mean_y - slope * mean_x;
        // R² = 1 − SS_res / SS_tot; for constant y define R² = 1 (the line
        // reproduces the data exactly).
        let r_squared = if syy == 0.0 {
            1.0
        } else {
            let ss_res: f64 = xs
                .iter()
                .zip(ys)
                .map(|(&x, &y)| {
                    let e = y - (slope * x + intercept);
                    e * e
                })
                .sum();
            (1.0 - ss_res / syy).clamp(0.0, 1.0)
        };
        Self {
            line: Line { slope, intercept },
            r_squared,
            n: xs.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys: Vec<f64> = xs.iter().map(|x| 2.5 * x - 1.0).collect();
        let fit = SimpleOls::fit(&xs, &ys);
        assert!((fit.line.slope - 2.5).abs() < 1e-12);
        assert!((fit.line.intercept + 1.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_high_r2() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 3.0 * x + 10.0 + if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let fit = SimpleOls::fit(&xs, &ys);
        assert!((fit.line.slope - 3.0).abs() < 0.01);
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn uncorrelated_data_low_r2() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let ys = [5.0, 1.0, 6.0, 0.0, 5.5, 0.5];
        let fit = SimpleOls::fit(&xs, &ys);
        assert!(fit.r_squared < 0.3, "r2 = {}", fit.r_squared);
    }

    #[test]
    fn constant_y_defines_r2_one() {
        let fit = SimpleOls::fit(&[1.0, 2.0, 3.0], &[4.0, 4.0, 4.0]);
        assert_eq!(fit.r_squared, 1.0);
        assert!((fit.line.slope).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        SimpleOls::fit(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "all x values identical")]
    fn degenerate_x_panics() {
        SimpleOls::fit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn predict_evaluates_line() {
        let line = Line {
            slope: 2.0,
            intercept: 1.0,
        };
        assert_eq!(line.predict(3.0), 7.0);
    }
}
