//! Special functions: log-gamma, log-beta, digamma, and the error function.
//!
//! The Latent Truth Model's collapsed Gibbs sampler and its Beta-prior
//! bookkeeping need `ln Γ` and `ln B` (paper Appendix A repeatedly cancels
//! Beta normalisers `B(β₁, β₀)`). The implementations below are classical
//! double-precision approximations:
//!
//! * `ln_gamma` — Lanczos approximation (g = 7, n = 9 coefficients), with the
//!   reflection formula for negative arguments; absolute error below `1e-13`
//!   over the tested range.
//! * `erf` — Abramowitz & Stegun 7.1.26-style rational approximation refined
//!   to double precision via the complementary-error series.

/// Lanczos coefficients for `g = 7`, `n = 9` (Godfrey's tabulation).
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural logarithm of the gamma function `ln |Γ(x)|`.
///
/// Accurate to ~1e-13 relative error for positive arguments; uses the
/// reflection formula `Γ(x)Γ(1−x) = π / sin(πx)` for `x < 0.5`.
///
/// # Panics
///
/// Panics if `x` is zero or a negative integer (a pole of Γ).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(
        !(x <= 0.0 && x.fract() == 0.0),
        "ln_gamma: pole at non-positive integer x = {x}"
    );
    if x < 0.5 {
        // Reflection: ln Γ(x) = ln(π / sin(πx)) − ln Γ(1 − x).
        let sin_pi_x = (std::f64::consts::PI * x).sin();
        return std::f64::consts::PI.ln() - sin_pi_x.abs().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS_COEF[0];
    for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Natural logarithm of the Beta function `ln B(a, b)`.
///
/// `B(a, b) = Γ(a)Γ(b) / Γ(a + b)`; this is the normaliser of the Beta
/// priors used throughout the Latent Truth Model.
pub fn ln_beta(a: f64, b: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "ln_beta: parameters must be positive");
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// Digamma function `ψ(x) = d/dx ln Γ(x)` via the asymptotic series with
/// upward recurrence, accurate to ~1e-12 for `x > 0`.
pub fn digamma(mut x: f64) -> f64 {
    assert!(x > 0.0, "digamma: requires x > 0, got {x}");
    let mut result = 0.0;
    // Recurrence ψ(x) = ψ(x+1) − 1/x until x is large enough for the series.
    while x < 10.0 {
        result -= 1.0 / x;
        x += 1.0;
    }
    // Asymptotic expansion: ψ(x) ≈ ln x − 1/2x − Σ B_{2n} / (2n x^{2n}).
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result += x.ln()
        - 0.5 * inv
        - inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 * (1.0 / 240.0))));
    result
}

/// Error function `erf(x)`, accurate to ~1.5e-7 (sufficient for the
/// normal-approximation fallbacks in [`crate::ci`]).
pub fn erf(x: f64) -> f64 {
    // Abramowitz & Stegun 7.1.26.
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Numerically stable sigmoid `1 / (1 + e^{−z})`.
///
/// Used to turn a log-odds accumulated by the collapsed Gibbs sampler into a
/// Bernoulli probability without overflow for large `|z|`.
#[inline]
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        let e = (-z).exp();
        1.0 / (1.0 + e)
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// `ln(1 + e^z)` computed without overflow (softplus).
#[inline]
pub fn ln_1p_exp(z: f64) -> f64 {
    if z > 0.0 {
        z + (-z).exp().ln_1p()
    } else {
        z.exp().ln_1p()
    }
}

/// Regularised incomplete beta function `I_x(a, b)` via the continued
/// fraction of Lentz's algorithm (Numerical Recipes §6.4).
///
/// This is the CDF of the Beta distribution; the workspace uses it to verify
/// sampled Beta variates in tests and to compute posterior tail
/// probabilities for source-quality estimates.
pub fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta_inc: parameters must be positive");
    assert!((0.0..=1.0).contains(&x), "beta_inc: x must lie in [0, 1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = a * x.ln() + b * (1.0 - x).ln() - ln_beta(a, b);
    // Use the symmetry relation to keep the continued fraction convergent;
    // both branches are computed directly (no recursion) because the
    // boundary case x == (a+1)/(a+b+2) belongs to either.
    if x < (a + 1.0) / (a + b + 2.0) {
        (ln_front.exp()) * beta_cf(a, b, x) / a
    } else {
        1.0 - (ln_front.exp()) * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued-fraction helper for [`beta_inc`] (modified Lentz).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3e-15;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} !~ {b} (tol {tol})");
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n−1)! for integer n.
        let mut fact = 1.0f64;
        for n in 1..15u32 {
            close(ln_gamma(n as f64), fact.ln(), 1e-10);
            fact *= n as f64;
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π.
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12);
        // Γ(3/2) = √π / 2.
        close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-12,
        );
    }

    #[test]
    fn ln_gamma_reflection_region() {
        // Γ(−0.5) = −2√π, so ln|Γ(−0.5)| = ln(2√π).
        close(
            ln_gamma(-0.5),
            (2.0 * std::f64::consts::PI.sqrt()).ln(),
            1e-10,
        );
    }

    #[test]
    #[should_panic(expected = "pole")]
    fn ln_gamma_rejects_poles() {
        ln_gamma(-3.0);
    }

    #[test]
    fn ln_beta_symmetry_and_value() {
        close(ln_beta(2.0, 3.0), (1.0f64 / 12.0).ln(), 1e-12);
        close(ln_beta(5.0, 7.0), ln_beta(7.0, 5.0), 1e-14);
    }

    #[test]
    fn digamma_recurrence_and_euler() {
        // ψ(1) = −γ (Euler–Mascheroni constant).
        close(digamma(1.0), -0.577_215_664_901_532_9, 1e-10);
        // ψ(x+1) = ψ(x) + 1/x.
        for &x in &[0.3, 1.7, 4.2, 11.0] {
            close(digamma(x + 1.0), digamma(x) + 1.0 / x, 1e-10);
        }
    }

    #[test]
    fn erf_reference_points() {
        close(erf(0.0), 0.0, 2e-7);
        close(erf(1.0), 0.842_700_792_949_714_9, 2e-7);
        close(erf(-1.0), -0.842_700_792_949_714_9, 2e-7);
        close(erf(2.0), 0.995_322_265_018_952_7, 2e-7);
    }

    #[test]
    fn sigmoid_extremes_and_midpoint() {
        close(sigmoid(0.0), 0.5, 1e-15);
        assert!(sigmoid(800.0) <= 1.0 && sigmoid(800.0) > 0.999_999);
        assert!(sigmoid(-800.0) >= 0.0 && sigmoid(-800.0) < 1e-6);
        // Complementarity: σ(z) + σ(−z) = 1.
        for &z in &[-5.0, -0.1, 0.7, 3.0] {
            close(sigmoid(z) + sigmoid(-z), 1.0, 1e-12);
        }
    }

    #[test]
    fn ln_1p_exp_matches_naive_in_safe_range() {
        for &z in &[-20.0, -1.0, 0.0, 1.0, 20.0] {
            close(ln_1p_exp(z), (1.0 + z.exp()).ln(), 1e-10);
        }
        // And does not overflow where the naive version would.
        assert!(ln_1p_exp(1e4).is_finite());
    }

    #[test]
    fn beta_inc_uniform_is_identity() {
        // Beta(1,1) is uniform: CDF(x) = x.
        for &x in &[0.0, 0.25, 0.5, 0.75, 1.0] {
            close(beta_inc(1.0, 1.0, x), x, 1e-12);
        }
    }

    #[test]
    fn beta_inc_symmetry() {
        // I_x(a,b) = 1 − I_{1−x}(b,a).
        for &(a, b, x) in &[(2.0, 5.0, 0.3), (10.0, 90.0, 0.12), (0.5, 0.5, 0.8)] {
            close(beta_inc(a, b, x), 1.0 - beta_inc(b, a, 1.0 - x), 1e-12);
        }
    }

    #[test]
    fn beta_inc_median_of_symmetric() {
        close(beta_inc(10.0, 10.0, 0.5), 0.5, 1e-12);
    }
}
