//! Correlation coefficients.
//!
//! The workspace uses these to quantify how well inferred source quality
//! tracks the planted generator profiles (Table 8 validation): Pearson for
//! linear agreement, Spearman for rank agreement (the paper's Table 8 is
//! presented as a ranking by sensitivity).

/// Pearson product-moment correlation of two equal-length samples.
///
/// Returns `0` when either sample has zero variance (no linear
/// relationship is measurable).
///
/// # Panics
///
/// Panics if the slices differ in length or have fewer than two points.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson: length mismatch");
    assert!(xs.len() >= 2, "pearson: need at least two points");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        0.0
    } else {
        sxy / (sxx * syy).sqrt()
    }
}

/// Spearman rank correlation: Pearson correlation of the (tie-averaged)
/// ranks.
///
/// # Panics
///
/// Panics if the slices differ in length or have fewer than two points.
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "spearman: length mismatch");
    assert!(xs.len() >= 2, "spearman: need at least two points");
    let rx = ranks(xs);
    let ry = ranks(ys);
    pearson(&rx, &ry)
}

/// Tie-averaged ranks (1-based) of a sample.
fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..xs.len()).collect();
    order.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("ranks: NaN input"));
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && xs[order[j + 1]] == xs[order[i]] {
            j += 1;
        }
        // Ranks i+1..=j+1 averaged across the tie group.
        let avg = (i + 1 + j + 1) as f64 / 2.0;
        for &k in &order[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_linear() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 1.0).collect();
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = xs.iter().map(|x| -x).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_zero_variance_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn spearman_monotone_nonlinear_is_one() {
        let xs = [0.1f64, 0.5, 0.9, 2.0, 5.0];
        let ys: Vec<f64> = xs.iter().map(|x| x.exp()).collect();
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        // xs has a tie; hand-computed: ranks xs = [1.5, 1.5, 3, 4].
        let xs = [2.0, 2.0, 3.0, 4.0];
        let ys = [1.0, 2.0, 3.0, 4.0];
        let r = spearman(&xs, &ys);
        assert!(r > 0.9 && r < 1.0, "r = {r}");
    }

    #[test]
    fn spearman_reversed_is_minus_one() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [5.0, 4.0, 3.0, 2.0, 1.0];
        assert!((spearman(&xs, &ys) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranks_tie_averaging() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_rejected() {
        pearson(&[1.0], &[1.0, 2.0]);
    }
}
