//! Descriptive statistics: batch summaries and a streaming Welford
//! accumulator.
//!
//! The experiment harness summarises repeated runs (Figure 5 repeats each
//! convergence measurement 10 times) and dataset statistics (claims per
//! fact, sources per entity). These helpers keep that logic out of the
//! experiment code.

/// Summary statistics over a slice of observations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Describe {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased (n−1) sample variance; `0` when `n < 2`.
    pub variance: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Describe {
    /// Computes summary statistics for `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or contains NaN.
    pub fn of(data: &[f64]) -> Self {
        assert!(!data.is_empty(), "Describe::of: empty input");
        let mut w = Welford::new();
        for &x in data {
            assert!(!x.is_nan(), "Describe::of: NaN observation");
            w.push(x);
        }
        Self {
            n: w.count(),
            mean: w.mean(),
            variance: w.sample_variance(),
            min: data.iter().copied().fold(f64::INFINITY, f64::min),
            // analyzer: allow(forbidden-api) -- a NaN sample already surfaces through mean/variance; min/max stay order stats of the finite points
            max: data.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }
}

/// Streaming mean/variance accumulator (Welford's online algorithm).
///
/// Numerically stable for long streams; used when summarising per-iteration
/// sampler statistics without materialising them.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    count: usize,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Current mean (`0` when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (`0` when fewer than two observations).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population variance (`0` when empty).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = (self.count + other.count) as f64;
        let delta = other.mean - self.mean;
        self.m2 += other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total;
        self.mean += delta * other.count as f64 / total;
        self.count += other.count;
    }
}

/// Returns the `q`-quantile of `data` (linear interpolation between order
/// statistics, "type 7" as in R / NumPy default).
///
/// # Panics
///
/// Panics if `data` is empty, contains NaN, or `q ∉ [0, 1]`.
pub fn quantile(data: &[f64], q: f64) -> f64 {
    assert!(!data.is_empty(), "quantile: empty input");
    assert!((0.0..=1.0).contains(&q), "quantile: q must lie in [0, 1]");
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("quantile: NaN observation"));
    let h = q * (sorted.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
}

/// Median, shorthand for `quantile(data, 0.5)`.
pub fn median(data: &[f64]) -> f64 {
    quantile(data, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_basic() {
        let d = Describe::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(d.n, 4);
        assert!((d.mean - 2.5).abs() < 1e-12);
        assert!((d.variance - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(d.min, 1.0);
        assert_eq!(d.max, 4.0);
    }

    #[test]
    #[should_panic(expected = "empty input")]
    fn describe_rejects_empty() {
        Describe::of(&[]);
    }

    #[test]
    fn welford_matches_batch() {
        let data = [3.2, -1.0, 4.5, 0.0, 2.2, 9.9];
        let mut w = Welford::new();
        for &x in &data {
            w.push(x);
        }
        let d = Describe::of(&data);
        assert!((w.mean() - d.mean).abs() < 1e-12);
        assert!((w.sample_variance() - d.variance).abs() < 1e-12);
    }

    #[test]
    fn welford_single_observation() {
        let mut w = Welford::new();
        w.push(7.0);
        assert_eq!(w.mean(), 7.0);
        assert_eq!(w.sample_variance(), 0.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let (a_data, b_data) = ([1.0, 2.0, 3.0], [10.0, 20.0, 30.0, 40.0]);
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &a_data {
            a.push(x);
        }
        for &x in &b_data {
            b.push(x);
        }
        let mut merged = a;
        merged.merge(&b);

        let mut seq = Welford::new();
        for &x in a_data.iter().chain(b_data.iter()) {
            seq.push(x);
        }
        assert_eq!(merged.count(), seq.count());
        assert!((merged.mean() - seq.mean()).abs() < 1e-12);
        assert!((merged.sample_variance() - seq.sample_variance()).abs() < 1e-12);
    }

    #[test]
    fn welford_merge_with_empty_is_identity() {
        let mut w = Welford::new();
        w.push(5.0);
        w.push(6.0);
        let before = w;
        w.merge(&Welford::new());
        assert_eq!(w, before);
        let mut empty = Welford::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn quantile_interpolates() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&data, 0.0), 1.0);
        assert_eq!(quantile(&data, 1.0), 4.0);
        assert!((quantile(&data, 0.5) - 2.5).abs() < 1e-12);
        assert!((median(&[5.0, 1.0, 3.0]) - 3.0).abs() < 1e-12);
    }
}
