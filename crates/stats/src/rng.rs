//! Deterministic random-number plumbing.
//!
//! Every stochastic component in the workspace — the Gibbs sampler, the
//! dataset generators, the synthetic stress test — derives its randomness
//! from an explicit 64-bit seed through a [`SeedStream`], so that every
//! experiment is reproducible and independent sub-tasks (e.g. the 10
//! repeated chains of Figure 5) receive decorrelated generators that do not
//! depend on scheduling order.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The RNG used throughout the workspace.
///
/// ChaCha8 is deterministic across platforms (unlike `StdRng`, whose
/// algorithm is unspecified and may change between `rand` releases), which
/// keeps the numbers in EXPERIMENTS.md stable.
pub type WorkspaceRng = ChaCha8Rng;

/// Creates the workspace RNG from a seed.
pub fn rng_from_seed(seed: u64) -> WorkspaceRng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// A splittable stream of independent, reproducible RNGs.
///
/// `SeedStream` hands out child generators derived from `(root_seed,
/// child_index)` via SplitMix64 finalisation, so adding or re-ordering
/// *later* derivations never perturbs earlier ones.
#[derive(Debug, Clone)]
pub struct SeedStream {
    root: u64,
    next_child: u64,
}

impl SeedStream {
    /// Creates a stream rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            root: seed,
            next_child: 0,
        }
    }

    /// Returns the next child RNG in the stream.
    pub fn next_rng(&mut self) -> WorkspaceRng {
        let child = self.derive(self.next_child);
        self.next_child += 1;
        child
    }

    /// Returns the child RNG for a specific index, independent of how many
    /// children have been taken from the stream.
    pub fn rng_for(&self, index: u64) -> WorkspaceRng {
        self.derive(index)
    }

    /// Returns a labelled child RNG; equal labels yield equal generators.
    /// Useful for naming experiment arms ("books", "movies", …) without
    /// coordinating indices.
    pub fn rng_for_label(&self, label: &str) -> WorkspaceRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self.derive(h)
    }

    fn derive(&self, index: u64) -> WorkspaceRng {
        rng_from_seed(derive_seed(self.root, index))
    }
}

/// Derives the decorrelated child seed `(root, index)` — the same mixing
/// [`SeedStream`] uses, exposed for components that need a *seed* rather
/// than a generator (e.g. the multi-chain Gibbs driver, whose per-chain
/// `LtmConfig` carries a `u64` seed).
#[inline]
pub fn derive_seed(root: u64, index: u64) -> u64 {
    splitmix64(root ^ splitmix64(index))
}

/// SplitMix64 finalisation step: a cheap, well-mixed 64→64-bit hash.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Draws a uniform `f64` in `[0, 1)` — convenience used in hot sampler
/// loops.
#[inline]
pub fn uniform01<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    rng.gen::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = rng_from_seed(42);
        let mut b = rng_from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = rng_from_seed(1);
        let mut b = rng_from_seed(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn derive_seed_matches_stream_children() {
        let s = SeedStream::new(7);
        let mut via_stream = s.rng_for(5);
        let mut via_seed = rng_from_seed(derive_seed(7, 5));
        for _ in 0..16 {
            assert_eq!(via_stream.gen::<u64>(), via_seed.gen::<u64>());
        }
        // Distinct indices decorrelate.
        assert_ne!(derive_seed(7, 0), derive_seed(7, 1));
    }

    #[test]
    fn stream_children_are_independent_of_order() {
        let s = SeedStream::new(7);
        let mut direct = s.rng_for(5);
        let mut sequential = {
            let mut stream = SeedStream::new(7);
            for _ in 0..5 {
                let _ = stream.next_rng();
            }
            stream.next_rng()
        };
        assert_eq!(direct.gen::<u64>(), sequential.gen::<u64>());
    }

    #[test]
    fn labelled_children_reproducible_and_distinct() {
        let s = SeedStream::new(99);
        let mut a1 = s.rng_for_label("books");
        let mut a2 = s.rng_for_label("books");
        let mut b = s.rng_for_label("movies");
        assert_eq!(a1.gen::<u64>(), a2.gen::<u64>());
        let mut a3 = s.rng_for_label("books");
        let _ = a3.gen::<u64>();
        assert_ne!(a3.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn children_decorrelated_across_indices() {
        let s = SeedStream::new(1234);
        let mut seen = std::collections::HashSet::new();
        for i in 0..64 {
            let mut r = s.rng_for(i);
            assert!(seen.insert(r.gen::<u64>()), "collision at child {i}");
        }
    }

    #[test]
    fn uniform01_in_range() {
        let mut r = rng_from_seed(5);
        for _ in 0..1000 {
            let u = uniform01(&mut r);
            assert!((0.0..1.0).contains(&u));
        }
    }
}
