//! Numeric substrate for the `latent-truth` workspace.
//!
//! The Latent Truth Model (Zhao et al., VLDB 2012) is built on a handful of
//! classical probabilistic primitives — Beta/Bernoulli conjugate pairs, a
//! collapsed Gibbs sampler, confidence intervals over repeated runs, and a
//! least-squares runtime regression. This crate implements those primitives
//! from scratch so the rest of the workspace does not depend on an external
//! statistics library:
//!
//! * [`special`] — log-gamma, log-beta, error function, and related special
//!   functions with double-precision accuracy.
//! * [`dist`] — samplers and densities for the Bernoulli, Beta, Gamma,
//!   Binomial, and categorical distributions.
//! * [`describe`] — descriptive statistics (means, variances, quantiles)
//!   including a streaming Welford accumulator.
//! * [`ci`] — Student-t confidence intervals for the mean, used by the
//!   convergence experiment (paper Figure 5).
//! * [`regression`] — simple ordinary least squares with `R²`, used by the
//!   runtime-scaling experiment (paper Figure 6).
//! * [`rng`] — deterministic, splittable random-number-generator plumbing so
//!   every experiment in the workspace is reproducible from a single seed.
//!
//! All samplers take `&mut impl rand::Rng` so callers control determinism.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod ci;
pub mod correlation;
pub mod describe;
pub mod dist;
pub mod regression;
pub mod rng;
pub mod special;

pub use ci::MeanCi;
pub use correlation::{pearson, spearman};
pub use describe::{Describe, Welford};
pub use dist::{Bernoulli, Beta, Binomial, Categorical, Gamma};
pub use regression::{Line, SimpleOls};
pub use rng::SeedStream;
