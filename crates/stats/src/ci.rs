//! Confidence intervals for the mean of repeated measurements.
//!
//! Figure 5 of the paper reports the sample mean and a 95% confidence
//! interval over 10 repeated sampler runs per point. With so few repeats the
//! correct interval uses Student's t critical values, not the normal 1.96.

use crate::describe::Welford;

/// Two-sided Student-t critical values `t_{0.975, df}` for small degrees of
/// freedom; beyond the table we fall back to the normal quantile, which is
/// accurate to < 0.7% at `df = 30`.
const T_975: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// Normal 97.5% quantile used when `df` exceeds the table.
const Z_975: f64 = 1.959_963_984_540_054;

/// A mean with a symmetric 95% confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanCi {
    /// Sample mean.
    pub mean: f64,
    /// Half-width of the 95% interval (`mean ± half_width`).
    pub half_width: f64,
    /// Number of observations behind the estimate.
    pub n: usize,
}

impl MeanCi {
    /// Computes the 95% Student-t confidence interval for the mean of
    /// `data`.
    ///
    /// With a single observation the interval has zero width (there is no
    /// variance estimate); this mirrors how the paper plots a bare point
    /// when repeats are unavailable.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn of(data: &[f64]) -> Self {
        assert!(!data.is_empty(), "MeanCi::of: empty input");
        let mut w = Welford::new();
        for &x in data {
            w.push(x);
        }
        let n = w.count();
        if n == 1 {
            return Self {
                mean: w.mean(),
                half_width: 0.0,
                n,
            };
        }
        let df = n - 1;
        let t = if df <= T_975.len() {
            T_975[df - 1]
        } else {
            Z_975
        };
        let sem = (w.sample_variance() / n as f64).sqrt();
        Self {
            mean: w.mean(),
            half_width: t * sem,
            n,
        }
    }

    /// Lower endpoint of the interval.
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper endpoint of the interval.
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_observation_zero_width() {
        let ci = MeanCi::of(&[0.9]);
        assert_eq!(ci.mean, 0.9);
        assert_eq!(ci.half_width, 0.0);
        assert_eq!(ci.n, 1);
    }

    #[test]
    fn constant_data_zero_width() {
        let ci = MeanCi::of(&[2.0; 10]);
        assert_eq!(ci.mean, 2.0);
        assert_eq!(ci.half_width, 0.0);
    }

    #[test]
    fn ten_repeats_uses_t_nine() {
        // n = 10, df = 9 → t = 2.262 (the Figure 5 setting).
        let data = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        let ci = MeanCi::of(&data);
        let mean = 5.5;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / 9.0;
        let expected = 2.262 * (var / 10.0).sqrt();
        assert!((ci.mean - mean).abs() < 1e-12);
        assert!((ci.half_width - expected).abs() < 1e-9);
        assert!(ci.lo() < mean && ci.hi() > mean);
    }

    #[test]
    fn large_n_approaches_normal() {
        let data: Vec<f64> = (0..1000).map(|i| (i % 7) as f64).collect();
        let ci = MeanCi::of(&data);
        let mean = data.iter().sum::<f64>() / 1000.0;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / 999.0;
        let expected = Z_975 * (var / 1000.0).sqrt();
        assert!((ci.half_width - expected).abs() < 1e-9);
    }

    #[test]
    fn interval_shrinks_with_more_data() {
        let small = MeanCi::of(&[1.0, 2.0, 3.0]);
        let data: Vec<f64> = std::iter::repeat_n([1.0, 2.0, 3.0], 30).flatten().collect();
        let large = MeanCi::of(&data);
        assert!(large.half_width < small.half_width);
    }
}
