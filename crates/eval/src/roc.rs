//! ROC curves and AUC (paper Figure 3).
//!
//! The paper summarises each method's ranking quality by the area under
//! its ROC curve, "which quantitatively evaluates capability of correctly
//! ranking random facts by score". AUC is computed by the tie-aware
//! Mann–Whitney U statistic: the probability that a random labeled-true
//! fact outscores a random labeled-false fact, counting ties as ½.

use ltm_model::{GroundTruth, TruthAssignment};
use serde::Serialize;

/// One point of an ROC curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RocPoint {
    /// False-positive rate at this operating point.
    pub fpr: f64,
    /// True-positive rate (recall) at this operating point.
    pub tpr: f64,
    /// The score threshold realising the point.
    pub threshold: f64,
}

/// Computes the ROC curve of `pred` on the labeled facts, from the
/// all-negative corner `(0,0)` to the all-positive corner `(1,1)`,
/// stepping through each distinct score.
pub fn roc_curve(truth: &GroundTruth, pred: &TruthAssignment) -> Vec<RocPoint> {
    let mut scored: Vec<(f64, bool)> = truth
        .iter()
        .map(|(f, label)| (pred.prob(f), label))
        .collect();
    let pos = scored.iter().filter(|(_, l)| *l).count();
    let neg = scored.len() - pos;
    // Descending by score; walk thresholds downwards.
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("scores are not NaN"));

    let mut points = vec![RocPoint {
        fpr: 0.0,
        tpr: 0.0,
        threshold: f64::INFINITY,
    }];
    let (mut tp, mut fp) = (0usize, 0usize);
    let mut i = 0;
    while i < scored.len() {
        let score = scored[i].0;
        // Consume the whole tie group at once — points between tied scores
        // are not realisable thresholds.
        while i < scored.len() && scored[i].0 == score {
            if scored[i].1 {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        points.push(RocPoint {
            fpr: if neg == 0 {
                0.0
            } else {
                fp as f64 / neg as f64
            },
            tpr: if pos == 0 {
                1.0
            } else {
                tp as f64 / pos as f64
            },
            threshold: score,
        });
    }
    points
}

/// Area under the ROC curve via the tie-aware rank statistic.
///
/// Returns 0.5 when either class is empty (no ranking information).
pub fn auc(truth: &GroundTruth, pred: &TruthAssignment) -> f64 {
    let mut scored: Vec<(f64, bool)> = truth
        .iter()
        .map(|(f, label)| (pred.prob(f), label))
        .collect();
    let pos = scored.iter().filter(|(_, l)| *l).count();
    let neg = scored.len() - pos;
    if pos == 0 || neg == 0 {
        return 0.5;
    }
    scored.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("scores are not NaN"));

    // Sum of average ranks (1-based) of the positive class.
    let mut rank_sum = 0.0f64;
    let mut i = 0;
    while i < scored.len() {
        let score = scored[i].0;
        let start = i;
        let mut positives_in_tie = 0usize;
        while i < scored.len() && scored[i].0 == score {
            if scored[i].1 {
                positives_in_tie += 1;
            }
            i += 1;
        }
        let avg_rank = (start + 1 + i) as f64 / 2.0; // mean of ranks start+1..=i
        rank_sum += avg_rank * positives_in_tie as f64;
    }
    (rank_sum - (pos * (pos + 1)) as f64 / 2.0) / (pos * neg) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltm_model::{EntityId, FactId};

    fn gt(labels: &[bool]) -> GroundTruth {
        let mut g = GroundTruth::new();
        for (i, &l) in labels.iter().enumerate() {
            g.insert(EntityId::new(0), FactId::from_usize(i), l);
        }
        g
    }

    #[test]
    fn perfect_separation_auc_one() {
        let truth = gt(&[true, true, false, false]);
        let pred = TruthAssignment::new(vec![0.9, 0.8, 0.2, 0.1]);
        assert!((auc(&truth, &pred) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_scores_auc_zero() {
        let truth = gt(&[true, true, false, false]);
        let pred = TruthAssignment::new(vec![0.1, 0.2, 0.8, 0.9]);
        assert!(auc(&truth, &pred).abs() < 1e-12);
    }

    #[test]
    fn constant_scores_auc_half() {
        let truth = gt(&[true, false, true, false]);
        let pred = TruthAssignment::new(vec![0.5; 4]);
        assert!((auc(&truth, &pred) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_class_returns_half() {
        let truth = gt(&[true, true]);
        let pred = TruthAssignment::new(vec![0.9, 0.1]);
        assert_eq!(auc(&truth, &pred), 0.5);
    }

    #[test]
    fn partial_overlap_hand_computed() {
        // positives: 0.8, 0.4; negatives: 0.6, 0.2.
        // Pairs: (0.8>0.6) 1, (0.8>0.2) 1, (0.4<0.6) 0, (0.4>0.2) 1 → 3/4.
        let truth = gt(&[true, false, true, false]);
        let pred = TruthAssignment::new(vec![0.8, 0.6, 0.4, 0.2]);
        assert!((auc(&truth, &pred) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn tie_counts_half() {
        // positive 0.5, negative 0.5 → AUC 0.5 by tie convention.
        let truth = gt(&[true, false]);
        let pred = TruthAssignment::new(vec![0.5, 0.5]);
        assert!((auc(&truth, &pred) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn curve_endpoints_and_monotonicity() {
        let truth = gt(&[true, false, true, false, true]);
        let pred = TruthAssignment::new(vec![0.9, 0.7, 0.6, 0.3, 0.2]);
        let curve = roc_curve(&truth, &pred);
        assert_eq!(curve.first().map(|p| (p.fpr, p.tpr)), Some((0.0, 0.0)));
        assert_eq!(curve.last().map(|p| (p.fpr, p.tpr)), Some((1.0, 1.0)));
        for w in curve.windows(2) {
            assert!(w[1].fpr >= w[0].fpr);
            assert!(w[1].tpr >= w[0].tpr);
            assert!(w[1].threshold <= w[0].threshold);
        }
    }

    #[test]
    fn auc_matches_trapezoid_of_curve() {
        let truth = gt(&[true, false, true, false, true, false, false]);
        let pred = TruthAssignment::new(vec![0.9, 0.8, 0.6, 0.5, 0.5, 0.3, 0.1]);
        let curve = roc_curve(&truth, &pred);
        let mut area = 0.0;
        for w in curve.windows(2) {
            area += (w[1].fpr - w[0].fpr) * (w[0].tpr + w[1].tpr) / 2.0;
        }
        assert!((area - auc(&truth, &pred)).abs() < 1e-12);
    }
}
