//! Threshold sweeps (paper Figure 2).
//!
//! The paper plots accuracy as the decision threshold varies over `[0, 1]`
//! to expose each method's score calibration: a discriminative method is
//! flat and high across the range; optimistic methods only work at very
//! high thresholds, conservative ones only at very low thresholds.

use ltm_model::{GroundTruth, TruthAssignment};

use crate::metrics::{evaluate, Metrics};

/// Evaluates `pred` at each threshold, returning `(threshold, metrics)`
/// pairs.
pub fn threshold_sweep(
    truth: &GroundTruth,
    pred: &TruthAssignment,
    thresholds: &[f64],
) -> Vec<(f64, Metrics)> {
    thresholds
        .iter()
        .map(|&t| (t, evaluate(truth, pred, t)))
        .collect()
}

/// The default grid used by the Figure 2 reproduction: 0.00 to 1.00 in
/// steps of 0.01.
pub fn default_grid() -> Vec<f64> {
    (0..=100).map(|i| i as f64 / 100.0).collect()
}

/// Accuracy at each threshold of the default grid — one curve of
/// Figure 2.
pub fn accuracy_series(truth: &GroundTruth, pred: &TruthAssignment) -> Vec<(f64, f64)> {
    threshold_sweep(truth, pred, &default_grid())
        .into_iter()
        .map(|(t, m)| (t, m.accuracy))
        .collect()
}

/// The threshold with the highest accuracy (ties broken towards the lower
/// threshold). The paper discusses each method's "optimal threshold" even
/// though it is unknowable without supervision.
pub fn best_threshold(truth: &GroundTruth, pred: &TruthAssignment) -> (f64, f64) {
    accuracy_series(truth, pred)
        .into_iter()
        .fold((0.0, f64::NEG_INFINITY), |best, (t, acc)| {
            if acc > best.1 {
                (t, acc)
            } else {
                best
            }
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltm_model::{EntityId, FactId};

    fn setup() -> (GroundTruth, TruthAssignment) {
        let mut gt = GroundTruth::new();
        gt.insert(EntityId::new(0), FactId::new(0), true);
        gt.insert(EntityId::new(0), FactId::new(1), true);
        gt.insert(EntityId::new(1), FactId::new(2), false);
        gt.insert(EntityId::new(1), FactId::new(3), false);
        (gt, TruthAssignment::new(vec![0.9, 0.7, 0.3, 0.1]))
    }

    #[test]
    fn grid_covers_unit_interval() {
        let g = default_grid();
        assert_eq!(g.len(), 101);
        assert_eq!(g[0], 0.0);
        assert_eq!(g[100], 1.0);
    }

    #[test]
    fn perfectly_separable_scores_peak_in_middle() {
        let (gt, pred) = setup();
        let series = accuracy_series(&gt, &pred);
        // Accuracy 1.0 anywhere strictly above 0.3 and at/below 0.7.
        for (t, acc) in &series {
            if *t > 0.3 && *t <= 0.7 {
                assert_eq!(*acc, 1.0, "threshold {t}");
            }
        }
        // At threshold 0 everything is predicted true: accuracy 0.5.
        assert_eq!(series[0].1, 0.5);
    }

    #[test]
    fn best_threshold_finds_plateau() {
        let (gt, pred) = setup();
        let (t, acc) = best_threshold(&gt, &pred);
        assert_eq!(acc, 1.0);
        assert!(t > 0.3 && t <= 0.7, "best threshold {t}");
    }

    #[test]
    fn sweep_matches_pointwise_evaluation() {
        let (gt, pred) = setup();
        let sweep = threshold_sweep(&gt, &pred, &[0.25, 0.5, 0.75]);
        assert_eq!(sweep.len(), 3);
        for (t, m) in sweep {
            assert_eq!(m, evaluate(&gt, &pred, t));
        }
    }
}
