//! Evaluation substrate for the `latent-truth` workspace.
//!
//! Implements the measurements of the paper's experimental section:
//!
//! * [`metrics`] — confusion matrices against labeled ground truth and the
//!   derived one-sided (precision / recall) and two-sided (false-positive
//!   rate / accuracy / F1) measures of Table 7, evaluated at a score
//!   threshold (0.5 in the paper's headline results);
//! * [`sweep`] — accuracy-versus-threshold curves (Figure 2);
//! * [`roc`] — ROC curves and the area under them (Figure 3), computed by
//!   the tie-aware Mann–Whitney statistic;
//! * [`timing`] — wall-clock measurement helpers for the runtime studies
//!   (Table 9, Figure 6);
//! * [`report`] — plain-text table rendering and JSON export used by the
//!   `repro` binary to print paper-style tables.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod calibration;
pub mod metrics;
pub mod report;
pub mod roc;
pub mod sweep;
pub mod timing;

pub use calibration::{brier_score, expected_calibration_error, reliability_diagram};
pub use metrics::{evaluate, Confusion, Metrics};
pub use report::TextTable;
pub use roc::{auc, roc_curve, RocPoint};
pub use sweep::{accuracy_series, threshold_sweep};
pub use timing::time;
