//! Wall-clock measurement helpers for the runtime studies
//! (paper Table 9 and Figure 6).

use std::time::{Duration, Instant};

use serde::Serialize;

/// Runs `f`, returning its result and the elapsed wall-clock time.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

/// Runs `f` `repeats` times and returns the mean wall-clock seconds —
/// the paper's Table 9 averages 10 runs per cell.
pub fn mean_seconds<R>(repeats: usize, mut f: impl FnMut() -> R) -> f64 {
    assert!(repeats > 0, "need at least one repeat");
    let mut total = Duration::ZERO;
    for _ in 0..repeats {
        let (_, d) = time(&mut f);
        total += d;
    }
    total.as_secs_f64() / repeats as f64
}

/// One row of a runtime-scaling table: dataset size and measured seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RuntimeRow {
    /// Number of entities in the subset.
    pub entities: usize,
    /// Number of claims in the subset.
    pub claims: usize,
    /// Mean measured seconds.
    pub seconds: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_returns_value_and_duration() {
        let (v, d) = time(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0 || d == Duration::ZERO);
    }

    #[test]
    fn mean_seconds_counts_all_repeats() {
        let mut calls = 0;
        let _ = mean_seconds(5, || calls += 1);
        assert_eq!(calls, 5);
    }

    #[test]
    #[should_panic(expected = "at least one repeat")]
    fn zero_repeats_rejected() {
        mean_seconds(0, || ());
    }

    #[test]
    fn timing_is_roughly_monotone_in_work() {
        let short = mean_seconds(3, || std::hint::black_box((0..10_000).sum::<u64>()));
        let long = mean_seconds(3, || std::hint::black_box((0..10_000_000).sum::<u64>()));
        assert!(long > short, "long {long} vs short {short}");
    }
}
