//! Confusion-matrix metrics against labeled ground truth
//! (paper §3.1 and Table 7).
//!
//! Predictions are compared against the labeled subset only (the paper
//! labels 100 entities per dataset); unlabeled facts are ignored. A fact
//! is predicted true when its score is **greater than or equal to** the
//! threshold, matching the paper's "equal to or above a threshold of 0.5".

use ltm_model::{GroundTruth, TruthAssignment};
use serde::Serialize;

/// Confusion counts of a prediction against ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct Confusion {
    /// Labeled-true facts predicted true.
    pub tp: usize,
    /// Labeled-false facts predicted true.
    pub fp: usize,
    /// Labeled-true facts predicted false.
    pub fn_: usize,
    /// Labeled-false facts predicted false.
    pub tn: usize,
}

impl Confusion {
    /// Compares `pred` against the labeled facts of `truth` at a score
    /// threshold.
    pub fn at_threshold(truth: &GroundTruth, pred: &TruthAssignment, threshold: f64) -> Self {
        let mut c = Confusion::default();
        for (f, label) in truth.iter() {
            let predicted = pred.is_true(f, threshold);
            match (label, predicted) {
                (true, true) => c.tp += 1,
                (false, true) => c.fp += 1,
                (true, false) => c.fn_ += 1,
                (false, false) => c.tn += 1,
            }
        }
        c
    }

    /// Total labeled facts.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.fn_ + self.tn
    }

    /// `TP / (TP + FP)`; 1 when the method makes no positive prediction
    /// (the convention behind Table 7's `1.000` precision entries for the
    /// conservative methods).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// `TP / (TP + FN)`; 1 when there are no labeled-true facts.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// `FP / (FP + TN)`; 0 when there are no labeled-false facts.
    pub fn false_positive_rate(&self) -> f64 {
        if self.fp + self.tn == 0 {
            0.0
        } else {
            self.fp as f64 / (self.fp + self.tn) as f64
        }
    }

    /// `TN / (FP + TN)`; 1 when there are no labeled-false facts.
    pub fn specificity(&self) -> f64 {
        1.0 - self.false_positive_rate()
    }

    /// `(TP + TN) / total`; 1 on an empty labeling.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            1.0
        } else {
            (self.tp + self.tn) as f64 / self.total() as f64
        }
    }

    /// Harmonic mean of precision and recall; 0 when both are 0.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// The Table 7 row for this confusion matrix.
    pub fn metrics(&self) -> Metrics {
        Metrics {
            precision: self.precision(),
            recall: self.recall(),
            fpr: self.false_positive_rate(),
            accuracy: self.accuracy(),
            f1: self.f1(),
        }
    }
}

/// The five measures the paper reports per method per dataset (Table 7):
/// one-sided precision and recall, two-sided false-positive rate, accuracy,
/// and F1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Metrics {
    /// One-sided: reliability of positive predictions.
    pub precision: f64,
    /// One-sided: coverage of true facts.
    pub recall: f64,
    /// Two-sided: fraction of false facts predicted true.
    pub fpr: f64,
    /// Two-sided: overall fraction correct.
    pub accuracy: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

/// Shorthand: metrics of `pred` against `truth` at a threshold.
pub fn evaluate(truth: &GroundTruth, pred: &TruthAssignment, threshold: f64) -> Metrics {
    Confusion::at_threshold(truth, pred, threshold).metrics()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltm_model::{EntityId, FactId};

    /// Four labeled facts with known scores:
    /// f0 true/0.9, f1 true/0.4, f2 false/0.6, f3 false/0.1.
    fn setup() -> (GroundTruth, TruthAssignment) {
        let mut gt = GroundTruth::new();
        gt.insert(EntityId::new(0), FactId::new(0), true);
        gt.insert(EntityId::new(0), FactId::new(1), true);
        gt.insert(EntityId::new(1), FactId::new(2), false);
        gt.insert(EntityId::new(1), FactId::new(3), false);
        let pred = TruthAssignment::new(vec![0.9, 0.4, 0.6, 0.1]);
        (gt, pred)
    }

    #[test]
    fn confusion_at_half() {
        let (gt, pred) = setup();
        let c = Confusion::at_threshold(&gt, &pred, 0.5);
        assert_eq!(
            c,
            Confusion {
                tp: 1,
                fp: 1,
                fn_: 1,
                tn: 1
            }
        );
        let m = c.metrics();
        assert_eq!(m.precision, 0.5);
        assert_eq!(m.recall, 0.5);
        assert_eq!(m.fpr, 0.5);
        assert_eq!(m.accuracy, 0.5);
        assert_eq!(m.f1, 0.5);
    }

    #[test]
    fn threshold_is_inclusive() {
        let (gt, _) = setup();
        let pred = TruthAssignment::new(vec![0.5, 0.5, 0.5, 0.5]);
        let c = Confusion::at_threshold(&gt, &pred, 0.5);
        assert_eq!(c.tp, 2);
        assert_eq!(c.fp, 2);
        assert_eq!(c.fn_ + c.tn, 0);
    }

    #[test]
    fn unlabeled_facts_ignored() {
        let mut gt = GroundTruth::new();
        gt.insert(EntityId::new(0), FactId::new(1), true);
        // Prediction covers 4 facts; only fact 1 is labeled.
        let pred = TruthAssignment::new(vec![0.0, 1.0, 0.0, 0.0]);
        let c = Confusion::at_threshold(&gt, &pred, 0.5);
        assert_eq!(c.total(), 1);
        assert_eq!(c.tp, 1);
    }

    #[test]
    fn degenerate_conventions() {
        // All-negative predictor: precision 1 by convention, recall 0.
        let (gt, _) = setup();
        let pred = TruthAssignment::new(vec![0.0; 4]);
        let m = evaluate(&gt, &pred, 0.5);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.fpr, 0.0);
        assert_eq!(m.f1, 0.0);

        // All-positive predictor: recall 1, FPR 1 (the paper's
        // TruthFinder/Investment/LTMpos row shape).
        let pred = TruthAssignment::new(vec![1.0; 4]);
        let m = evaluate(&gt, &pred, 0.5);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.fpr, 1.0);
        assert_eq!(m.precision, 0.5);
    }

    #[test]
    fn empty_ground_truth() {
        let gt = GroundTruth::new();
        let pred = TruthAssignment::new(vec![0.7]);
        let c = Confusion::at_threshold(&gt, &pred, 0.5);
        assert_eq!(c.total(), 0);
        assert_eq!(c.accuracy(), 1.0);
    }

    #[test]
    fn f1_is_harmonic_mean() {
        let c = Confusion {
            tp: 8,
            fp: 2,
            fn_: 4,
            tn: 6,
        };
        let p = 0.8;
        let r = 8.0 / 12.0;
        assert!((c.f1() - 2.0 * p * r / (p + r)).abs() < 1e-12);
    }

    #[test]
    fn specificity_complements_fpr() {
        let c = Confusion {
            tp: 1,
            fp: 3,
            fn_: 2,
            tn: 9,
        };
        assert!((c.specificity() + c.false_positive_rate() - 1.0).abs() < 1e-12);
    }
}
