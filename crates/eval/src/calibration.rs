//! Probability-calibration measures.
//!
//! Figure 2 of the paper shows that several methods produce badly
//! *calibrated* scores (TruthFinder's probabilities cluster near 1, the
//! conservative fact-finders' near 0) even when their ranking is decent.
//! These measures quantify that observation directly:
//!
//! * **Brier score** — mean squared error of the probabilities against
//!   the labels (lower is better; 0.25 is the score of a constant 0.5).
//! * **Expected calibration error (ECE)** — average |confidence −
//!   empirical frequency| over equal-width probability bins, weighted by
//!   bin occupancy.

use ltm_model::{GroundTruth, TruthAssignment};
use serde::Serialize;

/// Brier score of `pred` on the labeled facts: `mean((p − y)²)`.
///
/// Returns `0` for an empty labeling.
pub fn brier_score(truth: &GroundTruth, pred: &TruthAssignment) -> f64 {
    let mut total = 0.0;
    let mut n = 0usize;
    for (f, label) in truth.iter() {
        let y = label as u8 as f64;
        let e = pred.prob(f) - y;
        total += e * e;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

/// One bin of a reliability diagram.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ReliabilityBin {
    /// Lower edge of the bin (upper edge is `lo + width`).
    pub lo: f64,
    /// Mean predicted probability of facts in the bin.
    pub mean_confidence: f64,
    /// Empirical fraction of labeled-true facts in the bin.
    pub empirical: f64,
    /// Number of labeled facts in the bin.
    pub count: usize,
}

/// Reliability diagram over `bins` equal-width probability bins.
///
/// Facts with probability exactly 1.0 fall into the last bin.
///
/// # Panics
///
/// Panics if `bins == 0`.
pub fn reliability_diagram(
    truth: &GroundTruth,
    pred: &TruthAssignment,
    bins: usize,
) -> Vec<ReliabilityBin> {
    assert!(bins > 0, "need at least one bin");
    let width = 1.0 / bins as f64;
    let mut conf = vec![0.0f64; bins];
    let mut pos = vec![0usize; bins];
    let mut count = vec![0usize; bins];
    for (f, label) in truth.iter() {
        let p = pred.prob(f);
        let b = ((p / width) as usize).min(bins - 1);
        conf[b] += p;
        pos[b] += label as usize;
        count[b] += 1;
    }
    (0..bins)
        .map(|b| ReliabilityBin {
            lo: b as f64 * width,
            mean_confidence: if count[b] == 0 {
                0.0
            } else {
                conf[b] / count[b] as f64
            },
            empirical: if count[b] == 0 {
                0.0
            } else {
                pos[b] as f64 / count[b] as f64
            },
            count: count[b],
        })
        .collect()
}

/// Expected calibration error over `bins` equal-width bins:
/// `Σ_b (n_b / n) · |confidence_b − empirical_b|`.
pub fn expected_calibration_error(truth: &GroundTruth, pred: &TruthAssignment, bins: usize) -> f64 {
    let diagram = reliability_diagram(truth, pred, bins);
    let n: usize = diagram.iter().map(|b| b.count).sum();
    if n == 0 {
        return 0.0;
    }
    diagram
        .iter()
        .filter(|b| b.count > 0)
        .map(|b| b.count as f64 / n as f64 * (b.mean_confidence - b.empirical).abs())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltm_model::{EntityId, FactId};

    fn gt(labels: &[bool]) -> GroundTruth {
        let mut g = GroundTruth::new();
        for (i, &l) in labels.iter().enumerate() {
            g.insert(EntityId::new(0), FactId::from_usize(i), l);
        }
        g
    }

    #[test]
    fn brier_perfect_and_worst() {
        let truth = gt(&[true, false]);
        assert_eq!(
            brier_score(&truth, &TruthAssignment::new(vec![1.0, 0.0])),
            0.0
        );
        assert_eq!(
            brier_score(&truth, &TruthAssignment::new(vec![0.0, 1.0])),
            1.0
        );
        // Constant 0.5 scores 0.25.
        assert!((brier_score(&truth, &TruthAssignment::new(vec![0.5, 0.5])) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn brier_empty_labeling_is_zero() {
        let truth = GroundTruth::new();
        assert_eq!(brier_score(&truth, &TruthAssignment::new(vec![0.7])), 0.0);
    }

    #[test]
    fn ece_zero_for_perfectly_calibrated() {
        // 10 facts at p = 0.8, exactly 8 true.
        let labels: Vec<bool> = (0..10).map(|i| i < 8).collect();
        let truth = gt(&labels);
        let pred = TruthAssignment::new(vec![0.8; 10]);
        assert!(expected_calibration_error(&truth, &pred, 10) < 1e-12);
    }

    #[test]
    fn ece_large_for_overconfident() {
        // Everything predicted 0.95 but only half true.
        let labels: Vec<bool> = (0..10).map(|i| i % 2 == 0).collect();
        let truth = gt(&labels);
        let pred = TruthAssignment::new(vec![0.95; 10]);
        let ece = expected_calibration_error(&truth, &pred, 10);
        assert!((ece - 0.45).abs() < 1e-9, "ece = {ece}");
    }

    #[test]
    fn reliability_bins_partition_facts() {
        let labels = [true, false, true, true, false];
        let truth = gt(&labels);
        let pred = TruthAssignment::new(vec![0.05, 0.25, 0.55, 0.95, 1.0]);
        let d = reliability_diagram(&truth, &pred, 4);
        assert_eq!(d.len(), 4);
        let total: usize = d.iter().map(|b| b.count).sum();
        assert_eq!(total, 5);
        // p = 1.0 lands in the last bin.
        assert_eq!(d[3].count, 2);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        reliability_diagram(&gt(&[true]), &TruthAssignment::new(vec![0.5]), 0);
    }
}
