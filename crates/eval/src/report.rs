//! Plain-text table rendering and JSON export for the experiment harness.
//!
//! The `repro` binary prints each reproduced table/figure as an aligned
//! text table (mirroring the paper's layout) and writes the same data as
//! JSON so EXPERIMENTS.md numbers are diffable across runs.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; the cell count must match the header count.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row arity must match headers"
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders with padded columns, a header underline, and a trailing
    /// newline.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let write_row = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                let pad = widths[i] - cell.chars().count();
                // First column left-aligned, the rest right-aligned
                // (numbers read better right-aligned).
                if i == 0 {
                    let _ = write!(out, "{cell}{}", " ".repeat(pad));
                } else {
                    let _ = write!(out, "{}{cell}", " ".repeat(pad));
                }
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        write_row(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(row, &mut out);
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a probability/metric with 3 decimals, as in the paper's tables.
pub fn fmt3(x: f64) -> String {
    format!("{x:.3}")
}

/// Serialises `value` as pretty JSON into `path`, creating parent
/// directories as needed.
pub fn write_json<T: serde::Serialize>(path: &Path, value: &T) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    std::fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["Method", "Accuracy"]);
        t.row(["LTM", "0.995"]);
        t.row(["Voting", "0.880"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Method"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Right-aligned numeric column: both rows end at the same width.
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(lines[2].ends_with("0.995"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        TextTable::new(["a", "b"]).row(["only one"]);
    }

    #[test]
    fn fmt3_rounds() {
        assert_eq!(fmt3(0.99949), "0.999");
        assert_eq!(fmt3(1.0), "1.000");
    }

    #[test]
    fn write_json_roundtrip() {
        let dir = std::env::temp_dir().join("ltm-eval-test-json");
        let path = dir.join("nested/out.json");
        write_json(&path, &vec![1, 2, 3]).unwrap();
        let back: Vec<i32> =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unicode_widths_align() {
        let mut t = TextTable::new(["α₀", "value"]);
        t.row(["Beta(10,1000)", "0.990"]);
        // Must not panic on multi-byte headers; rough alignment suffices.
        let s = t.render();
        assert!(s.contains("Beta"));
    }
}
