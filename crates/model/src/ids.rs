//! Typed index newtypes.
//!
//! All tables in this crate are flat arrays indexed by dense integer ids.
//! Wrapping the indices in distinct newtypes prevents, say, a `SourceId`
//! from being used to index the fact table — a class of bug that is easy to
//! introduce in CSR-style code and hard to see in review.

use serde::{Deserialize, Serialize};

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(u32);

        impl $name {
            /// Wraps a raw index.
            #[inline]
            pub const fn new(index: u32) -> Self {
                Self(index)
            }

            /// Wraps a `usize` index.
            ///
            /// # Panics
            ///
            /// Panics if `index` exceeds `u32::MAX` (tables in this
            /// workspace are far below that bound; the paper's largest
            /// dataset has ~10⁵ claims).
            #[inline]
            pub fn from_usize(index: usize) -> Self {
                Self(u32::try_from(index).expect(concat!(
                    stringify!($name),
                    ": index exceeds u32::MAX"
                )))
            }

            /// The raw `u32` value.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// The index as `usize`, for slice indexing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.index()
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

define_id!(
    /// Identifies an entity (e.g. a movie or a book) in a [`crate::RawDatabase`].
    EntityId
);
define_id!(
    /// Identifies an attribute *value* (e.g. one cast member) in a
    /// [`crate::RawDatabase`].
    AttrId
);
define_id!(
    /// Identifies a data source (e.g. `IMDB`).
    SourceId
);
define_id!(
    /// Identifies a fact — a distinct `(entity, attribute)` pair
    /// (paper Definition 2).
    FactId
);
define_id!(
    /// Identifies a claim — one source's positive or negative assertion
    /// about one fact (paper Definition 3).
    ClaimId
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_ordering() {
        let a = FactId::new(3);
        let b = FactId::from_usize(7);
        assert_eq!(a.raw(), 3);
        assert_eq!(b.index(), 7);
        assert!(a < b);
        assert_eq!(usize::from(b), 7);
    }

    #[test]
    fn display_is_numeric() {
        assert_eq!(SourceId::new(12).to_string(), "12");
    }

    #[test]
    #[should_panic(expected = "exceeds u32::MAX")]
    fn from_usize_overflow_panics() {
        let _ = EntityId::from_usize(u32::MAX as usize + 1);
    }

    #[test]
    fn ids_usable_as_map_keys() {
        let mut m = std::collections::HashMap::new();
        m.insert(EntityId::new(1), "harry potter");
        assert_eq!(m[&EntityId::new(1)], "harry potter");
    }
}
