//! String interning.
//!
//! Raw databases repeat entity, attribute, and source names millions of
//! times (the paper's book dataset has 48k triples over 879 sources).
//! Interning maps each distinct name to a dense integer id once, after
//! which the whole pipeline works on ids; names are only rehydrated for
//! display.

use std::collections::HashMap;
use std::marker::PhantomData;

/// A bidirectional map between strings and a dense typed id.
///
/// `Id` is one of the newtypes from [`crate::ids`]; the interner assigns
/// ids `0, 1, 2, …` in first-seen order, which keeps downstream arrays
/// dense and insertion deterministic.
#[derive(Debug, Clone)]
pub struct Interner<Id> {
    names: Vec<Box<str>>,
    lookup: HashMap<Box<str>, u32>,
    _marker: PhantomData<Id>,
}

// Manual impl: `#[derive(Default)]` would needlessly require `Id: Default`.
impl<Id> Default for Interner<Id> {
    fn default() -> Self {
        Self {
            names: Vec::new(),
            lookup: HashMap::new(),
            _marker: PhantomData,
        }
    }
}

impl<Id> Interner<Id>
where
    Id: Copy + From32 + Into32,
{
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self {
            names: Vec::new(),
            lookup: HashMap::new(),
            _marker: PhantomData,
        }
    }

    /// Interns `name`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, name: &str) -> Id {
        if let Some(&i) = self.lookup.get(name) {
            return Id::from32(i);
        }
        let i = u32::try_from(self.names.len()).expect("interner: more than u32::MAX names");
        let boxed: Box<str> = name.into();
        self.names.push(boxed.clone());
        self.lookup.insert(boxed, i);
        Id::from32(i)
    }

    /// Looks up an already-interned name.
    pub fn get(&self, name: &str) -> Option<Id> {
        self.lookup.get(name).map(|&i| Id::from32(i))
    }

    /// Resolves an id back to its name.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this interner.
    pub fn resolve(&self, id: Id) -> &str {
        &self.names[id.into32() as usize]
    }

    /// Number of distinct interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (Id, &str)> + '_ {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Id::from32(i as u32), n.as_ref()))
    }
}

/// Conversion from a raw `u32` — implemented by the id newtypes.
pub trait From32 {
    /// Wraps a raw index.
    fn from32(raw: u32) -> Self;
}

/// Conversion into a raw `u32` — implemented by the id newtypes.
pub trait Into32 {
    /// Unwraps to the raw index.
    fn into32(self) -> u32;
}

macro_rules! impl_conv {
    ($($t:ty),*) => {$(
        impl From32 for $t {
            #[inline]
            fn from32(raw: u32) -> Self {
                <$t>::new(raw)
            }
        }
        impl Into32 for $t {
            #[inline]
            fn into32(self) -> u32 {
                self.raw()
            }
        }
    )*};
}

impl_conv!(
    crate::ids::EntityId,
    crate::ids::AttrId,
    crate::ids::SourceId,
    crate::ids::FactId,
    crate::ids::ClaimId
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SourceId;

    #[test]
    fn intern_dedups_and_resolves() {
        let mut i: Interner<SourceId> = Interner::new();
        let a = i.intern("imdb");
        let b = i.intern("netflix");
        let a2 = i.intern("imdb");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "imdb");
        assert_eq!(i.resolve(b), "netflix");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn ids_are_dense_in_first_seen_order() {
        let mut i: Interner<SourceId> = Interner::new();
        assert_eq!(i.intern("x").raw(), 0);
        assert_eq!(i.intern("y").raw(), 1);
        assert_eq!(i.intern("x").raw(), 0);
        assert_eq!(i.intern("z").raw(), 2);
    }

    #[test]
    fn get_does_not_insert() {
        let mut i: Interner<SourceId> = Interner::new();
        assert!(i.get("missing").is_none());
        assert!(i.is_empty());
        i.intern("present");
        assert_eq!(i.get("present").map(|s| s.raw()), Some(0));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut i: Interner<SourceId> = Interner::new();
        i.intern("a");
        i.intern("b");
        let pairs: Vec<(u32, &str)> = i.iter().map(|(id, n)| (id.raw(), n)).collect();
        assert_eq!(pairs, vec![(0, "a"), (1, "b")]);
    }

    #[test]
    fn empty_and_unicode_names() {
        let mut i: Interner<SourceId> = Interner::new();
        let e = i.intern("");
        let u = i.intern("Jiawei Han — 韩家炜");
        assert_eq!(i.resolve(e), "");
        assert_eq!(i.resolve(u), "Jiawei Han — 韩家炜");
    }
}
