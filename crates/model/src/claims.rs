//! The fact table and claim table (paper Definitions 2–3), in a
//! compressed-sparse-row layout.
//!
//! [`ClaimDb`] is the structure every inference method in the workspace
//! consumes. It stores:
//!
//! * the **fact table**: distinct `(entity, attribute)` pairs;
//! * the **claim table**: for each fact, one claim per source that covers
//!   the fact's entity — positive if the source asserted the fact, negative
//!   otherwise (Definition 3). Sources that never mention an entity make no
//!   claims about its facts;
//! * adjacency in three directions, each as CSR: fact → claims (used by the
//!   Gibbs sampler's per-fact resampling), source → claims (used by
//!   source-quality estimation and several baselines), and entity → facts
//!   (the mutual-exclusion groups used by PooledInvestment and by
//!   per-entity evaluation).
//!
//! Layout notes: claims are stored as three parallel arrays sorted by fact,
//! so "the claims of fact `f`" is a contiguous range — the sampler's inner
//! loop is a linear scan. The source-major view is a permutation index into
//! the same arrays.

use std::collections::{HashMap, HashSet};

use crate::ids::{AttrId, ClaimId, EntityId, FactId, SourceId};
use crate::raw::RawDatabase;

/// A fact: a distinct `(entity, attribute)` pair (paper Definition 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fact {
    /// The entity this fact describes.
    pub entity: EntityId,
    /// The attribute value this fact asserts.
    pub attr: AttrId,
}

/// A claim: one source's Boolean assertion about one fact
/// (paper Definition 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Claim {
    /// The fact the claim refers to.
    pub fact: FactId,
    /// The source making the claim.
    pub source: SourceId,
    /// `true` for a positive claim (source asserted the fact), `false` for
    /// a negative claim (source covered the entity but did not assert it).
    pub observation: bool,
}

/// Fact table + claim table with CSR adjacency. See the module docs.
#[derive(Debug, Clone)]
pub struct ClaimDb {
    facts: Vec<Fact>,
    /// Claims sorted by fact: parallel arrays.
    claim_source: Vec<SourceId>,
    claim_obs: Vec<bool>,
    /// `fact_offsets[f.index()]..fact_offsets[f.index()+1]` indexes the
    /// claims of fact `f`.
    fact_offsets: Vec<u32>,
    /// Source-major permutation: `source_claims[source_offsets[s]..
    /// source_offsets[s+1]]` are claim ids of source `s`.
    source_offsets: Vec<u32>,
    source_claims: Vec<ClaimId>,
    /// Entity → facts (facts sorted by id within each entity).
    entity_offsets: Vec<u32>,
    entity_facts: Vec<FactId>,
    num_sources: usize,
    num_positive: usize,
}

impl ClaimDb {
    /// Builds the fact and claim tables from a raw database, applying the
    /// claim-generation rules of Definition 3.
    pub fn from_raw(raw: &RawDatabase) -> Self {
        // 1. Distinct (entity, attr) pairs in sorted order become facts.
        //    Raw rows are sorted, so facts come out sorted and deduplicated
        //    by a linear scan.
        let mut facts: Vec<Fact> = Vec::new();
        let mut fact_of: HashMap<(EntityId, AttrId), FactId> = HashMap::new();
        for row in raw.rows() {
            let key = (row.entity, row.attr);
            if let std::collections::hash_map::Entry::Vacant(e) = fact_of.entry(key) {
                e.insert(FactId::from_usize(facts.len()));
                facts.push(Fact {
                    entity: row.entity,
                    attr: row.attr,
                });
            }
        }

        // 2. Which sources cover each entity, and which (fact, source)
        //    pairs are positive.
        let mut entity_sources: HashMap<EntityId, Vec<SourceId>> = HashMap::new();
        let mut positive: HashSet<(FactId, SourceId)> = HashSet::new();
        for row in raw.rows() {
            let f = fact_of[&(row.entity, row.attr)];
            positive.insert((f, row.source));
            let cover = entity_sources.entry(row.entity).or_default();
            if !cover.contains(&row.source) {
                cover.push(row.source);
            }
        }
        for cover in entity_sources.values_mut() {
            cover.sort_unstable();
        }

        // 3. Emit claims fact-by-fact: one per covering source.
        let mut claims: Vec<Claim> = Vec::new();
        for (i, fact) in facts.iter().enumerate() {
            let f = FactId::from_usize(i);
            for &s in &entity_sources[&fact.entity] {
                claims.push(Claim {
                    fact: f,
                    source: s,
                    observation: positive.contains(&(f, s)),
                });
            }
        }

        Self::from_parts(facts, claims, raw.num_sources())
    }

    /// Builds a `ClaimDb` directly from facts and explicit claims.
    ///
    /// This is the entry point for the synthetic generator (paper §6.1),
    /// whose generative process emits claim observations directly rather
    /// than going through a raw triple database.
    ///
    /// # Panics
    ///
    /// Panics if a claim references an out-of-range fact, if a
    /// `(fact, source)` pair appears twice, or if `num_sources` does not
    /// cover every referenced source.
    pub fn from_parts(facts: Vec<Fact>, mut claims: Vec<Claim>, num_sources: usize) -> Self {
        // Validate references and uniqueness.
        let mut seen: HashSet<(FactId, SourceId)> = HashSet::with_capacity(claims.len());
        for c in &claims {
            assert!(
                c.fact.index() < facts.len(),
                "claim references fact {} but there are only {} facts",
                c.fact,
                facts.len()
            );
            assert!(
                c.source.index() < num_sources,
                "claim references source {} but num_sources = {num_sources}",
                c.source
            );
            assert!(
                seen.insert((c.fact, c.source)),
                "duplicate claim for (fact {}, source {})",
                c.fact,
                c.source
            );
        }
        drop(seen);

        // Sort claims by (fact, source) and build the fact-major CSR.
        claims.sort_unstable_by_key(|c| (c.fact, c.source));
        let mut fact_offsets = vec![0u32; facts.len() + 1];
        for c in &claims {
            fact_offsets[c.fact.index() + 1] += 1;
        }
        for i in 0..facts.len() {
            fact_offsets[i + 1] += fact_offsets[i];
        }
        let claim_source: Vec<SourceId> = claims.iter().map(|c| c.source).collect();
        let claim_obs: Vec<bool> = claims.iter().map(|c| c.observation).collect();
        let num_positive = claim_obs.iter().filter(|&&o| o).count();

        // Source-major permutation by counting sort.
        let mut source_offsets = vec![0u32; num_sources + 1];
        for &s in &claim_source {
            source_offsets[s.index() + 1] += 1;
        }
        for i in 0..num_sources {
            source_offsets[i + 1] += source_offsets[i];
        }
        let mut cursor = source_offsets.clone();
        let mut source_claims = vec![ClaimId::new(0); claims.len()];
        for (i, &s) in claim_source.iter().enumerate() {
            source_claims[cursor[s.index()] as usize] = ClaimId::from_usize(i);
            cursor[s.index()] += 1;
        }

        // Entity → facts CSR. Entities are identified by their id; the
        // offsets array spans 0..=max_entity_id.
        let num_entities = facts
            .iter()
            .map(|f| f.entity.index() + 1)
            .max()
            .unwrap_or(0);
        let mut entity_offsets = vec![0u32; num_entities + 1];
        for f in &facts {
            entity_offsets[f.entity.index() + 1] += 1;
        }
        for i in 0..num_entities {
            entity_offsets[i + 1] += entity_offsets[i];
        }
        let mut cursor = entity_offsets.clone();
        let mut entity_facts = vec![FactId::new(0); facts.len()];
        for (i, f) in facts.iter().enumerate() {
            entity_facts[cursor[f.entity.index()] as usize] = FactId::from_usize(i);
            cursor[f.entity.index()] += 1;
        }

        Self {
            facts,
            claim_source,
            claim_obs,
            fact_offsets,
            source_offsets,
            source_claims,
            entity_offsets,
            entity_facts,
            num_sources,
            num_positive,
        }
    }

    /// Number of facts.
    pub fn num_facts(&self) -> usize {
        self.facts.len()
    }

    /// Number of claims (positive + negative).
    pub fn num_claims(&self) -> usize {
        self.claim_source.len()
    }

    /// Number of positive claims.
    pub fn num_positive_claims(&self) -> usize {
        self.num_positive
    }

    /// Number of negative claims.
    pub fn num_negative_claims(&self) -> usize {
        self.num_claims() - self.num_positive
    }

    /// Number of sources (the id space; some may have no claims).
    pub fn num_sources(&self) -> usize {
        self.num_sources
    }

    /// Number of entity ids spanned by the fact table.
    pub fn num_entities(&self) -> usize {
        self.entity_offsets.len() - 1
    }

    /// The fact record for `f`.
    pub fn fact(&self, f: FactId) -> Fact {
        self.facts[f.index()]
    }

    /// All facts, indexable by `FactId`.
    pub fn facts(&self) -> &[Fact] {
        &self.facts
    }

    /// Iterates over all fact ids.
    pub fn fact_ids(&self) -> impl Iterator<Item = FactId> {
        (0..self.facts.len()).map(FactId::from_usize)
    }

    /// Iterates over all source ids.
    pub fn source_ids(&self) -> impl Iterator<Item = SourceId> {
        (0..self.num_sources).map(SourceId::from_usize)
    }

    /// The contiguous claim-index range of fact `f`.
    #[inline]
    pub fn fact_claim_range(&self, f: FactId) -> std::ops::Range<usize> {
        self.fact_offsets[f.index()] as usize..self.fact_offsets[f.index() + 1] as usize
    }

    /// The raw fact-major CSR offsets: claims of fact `f` occupy
    /// `offsets[f] as usize..offsets[f + 1] as usize` in the parallel claim
    /// arrays ([`ClaimDb::claim_sources`], [`ClaimDb::claim_observations`]).
    ///
    /// These raw accessors exist for hot loops (the Gibbs sampler) that
    /// sweep every fact: slicing the arrays once per fact avoids the
    /// repeated offset lookups and iterator construction of the per-fact
    /// convenience accessors.
    #[inline]
    pub fn fact_offsets(&self) -> &[u32] {
        &self.fact_offsets
    }

    /// All claim sources in fact-major order (parallel to
    /// [`ClaimDb::claim_observations`], indexed via
    /// [`ClaimDb::fact_offsets`]).
    #[inline]
    pub fn claim_sources(&self) -> &[SourceId] {
        &self.claim_source
    }

    /// All claim observations in fact-major order (parallel to
    /// [`ClaimDb::claim_sources`]).
    #[inline]
    pub fn claim_observations(&self) -> &[bool] {
        &self.claim_obs
    }

    /// The sources claiming fact `f` (parallel to
    /// [`ClaimDb::fact_claim_observations`]).
    #[inline]
    pub fn fact_claim_sources(&self, f: FactId) -> &[SourceId] {
        &self.claim_source[self.fact_claim_range(f)]
    }

    /// The observations of fact `f`'s claims (parallel to
    /// [`ClaimDb::fact_claim_sources`]).
    #[inline]
    pub fn fact_claim_observations(&self, f: FactId) -> &[bool] {
        &self.claim_obs[self.fact_claim_range(f)]
    }

    /// Iterates `(source, observation)` over the claims of fact `f`.
    pub fn claims_of_fact(&self, f: FactId) -> impl Iterator<Item = (SourceId, bool)> + '_ {
        self.fact_claim_sources(f)
            .iter()
            .copied()
            .zip(self.fact_claim_observations(f).iter().copied())
    }

    /// The source of claim `c`.
    #[inline]
    pub fn claim_source(&self, c: ClaimId) -> SourceId {
        self.claim_source[c.index()]
    }

    /// The observation of claim `c`.
    #[inline]
    pub fn claim_observation(&self, c: ClaimId) -> bool {
        self.claim_obs[c.index()]
    }

    /// The fact of claim `c` (binary search over the fact offsets).
    pub fn claim_fact(&self, c: ClaimId) -> FactId {
        let i = c.raw();
        // partition_point returns the count of facts whose range ends at or
        // before i, i.e. the owning fact index.
        let f = self.fact_offsets[1..].partition_point(|&end| end <= i);
        FactId::from_usize(f)
    }

    /// Claim ids made by source `s` (both positive and negative).
    pub fn claims_of_source(&self, s: SourceId) -> &[ClaimId] {
        let range =
            self.source_offsets[s.index()] as usize..self.source_offsets[s.index() + 1] as usize;
        &self.source_claims[range]
    }

    /// Facts positively asserted by source `s`.
    pub fn positive_facts_of_source(&self, s: SourceId) -> impl Iterator<Item = FactId> + '_ {
        self.claims_of_source(s)
            .iter()
            .copied()
            .filter(|&c| self.claim_observation(c))
            .map(|c| self.claim_fact(c))
    }

    /// Facts of entity `e` (empty if the entity id is outside the fact
    /// table's range).
    pub fn facts_of_entity(&self, e: EntityId) -> &[FactId] {
        if e.index() + 1 >= self.entity_offsets.len() {
            return &[];
        }
        let range =
            self.entity_offsets[e.index()] as usize..self.entity_offsets[e.index() + 1] as usize;
        &self.entity_facts[range]
    }

    /// Iterates over entity ids that own at least one fact.
    pub fn entity_ids(&self) -> impl Iterator<Item = EntityId> + '_ {
        (0..self.num_entities())
            .map(EntityId::from_usize)
            .filter(|e| !self.facts_of_entity(*e).is_empty())
    }

    /// Number of positive claims for fact `f`.
    pub fn positive_count(&self, f: FactId) -> usize {
        self.fact_claim_observations(f)
            .iter()
            .filter(|&&o| o)
            .count()
    }

    /// Materialises all claims (test/debug convenience; inference code uses
    /// the CSR accessors instead).
    pub fn all_claims(&self) -> Vec<Claim> {
        let mut out = Vec::with_capacity(self.num_claims());
        for f in self.fact_ids() {
            for (source, observation) in self.claims_of_fact(f) {
                out.push(Claim {
                    fact: f,
                    source,
                    observation,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raw::RawDatabaseBuilder;

    /// Paper Table 1 → Tables 2 and 3.
    fn table1() -> (RawDatabase, ClaimDb) {
        let mut b = RawDatabaseBuilder::new();
        b.add("Harry Potter", "Daniel Radcliffe", "IMDB");
        b.add("Harry Potter", "Emma Watson", "IMDB");
        b.add("Harry Potter", "Rupert Grint", "IMDB");
        b.add("Harry Potter", "Daniel Radcliffe", "Netflix");
        b.add("Harry Potter", "Daniel Radcliffe", "BadSource.com");
        b.add("Harry Potter", "Emma Watson", "BadSource.com");
        b.add("Harry Potter", "Johnny Depp", "BadSource.com");
        b.add("Pirates 4", "Johnny Depp", "Hulu.com");
        let raw = b.build();
        let db = ClaimDb::from_raw(&raw);
        (raw, db)
    }

    fn fact_id(raw: &RawDatabase, db: &ClaimDb, entity: &str, attr: &str) -> FactId {
        let e = raw.entity_id(entity).unwrap();
        let a = raw.attr_id(attr).unwrap();
        db.fact_ids()
            .find(|&f| db.fact(f).entity == e && db.fact(f).attr == a)
            .unwrap()
    }

    #[test]
    fn table2_fact_count() {
        let (_, db) = table1();
        // Five facts: 4 Harry Potter cast facts + 1 Pirates fact.
        assert_eq!(db.num_facts(), 5);
    }

    #[test]
    fn table3_claim_count_and_polarity() {
        let (raw, db) = table1();
        // Harry Potter is covered by IMDB, Netflix, BadSource.com → 3
        // claims per HP fact × 4 facts = 12; Pirates 4 is covered only by
        // Hulu.com → 1 claim. Total 13, matching paper Table 3.
        assert_eq!(db.num_claims(), 13);
        assert_eq!(db.num_positive_claims(), 8);
        assert_eq!(db.num_negative_claims(), 5);

        // Spot-check the paper's rows. Fact 2 (Emma Watson): IMDB true,
        // Netflix false, BadSource true.
        let emma = fact_id(&raw, &db, "Harry Potter", "Emma Watson");
        let claims: std::collections::HashMap<&str, bool> = db
            .claims_of_fact(emma)
            .map(|(s, o)| (raw.source_name(s), o))
            .collect();
        assert!(claims["IMDB"]);
        assert!(!claims["Netflix"]);
        assert!(claims["BadSource.com"]);
        assert!(!claims.contains_key("Hulu.com"), "Hulu makes no HP claims");

        // Fact 4 (Johnny Depp in HP): only BadSource positive.
        let depp_hp = fact_id(&raw, &db, "Harry Potter", "Johnny Depp");
        let claims: std::collections::HashMap<&str, bool> = db
            .claims_of_fact(depp_hp)
            .map(|(s, o)| (raw.source_name(s), o))
            .collect();
        assert!(!claims["IMDB"]);
        assert!(!claims["Netflix"]);
        assert!(claims["BadSource.com"]);
    }

    #[test]
    fn uncovered_source_makes_no_claim() {
        let (raw, db) = table1();
        let hulu = raw.source_id("Hulu.com").unwrap();
        let hulu_claims = db.claims_of_source(hulu);
        assert_eq!(hulu_claims.len(), 1);
        let c = hulu_claims[0];
        assert!(db.claim_observation(c));
        let f = db.claim_fact(c);
        assert_eq!(raw.entity_name(db.fact(f).entity), "Pirates 4");
    }

    #[test]
    fn claim_fact_inverse_of_ranges() {
        let (_, db) = table1();
        for f in db.fact_ids() {
            for i in db.fact_claim_range(f) {
                assert_eq!(db.claim_fact(ClaimId::from_usize(i)), f);
            }
        }
    }

    #[test]
    fn source_major_view_is_permutation() {
        let (_, db) = table1();
        let mut seen = vec![false; db.num_claims()];
        for s in db.source_ids() {
            for &c in db.claims_of_source(s) {
                assert_eq!(db.claim_source(c), s);
                assert!(!seen[c.index()], "claim listed twice");
                seen[c.index()] = true;
            }
        }
        assert!(seen.iter().all(|&x| x), "every claim appears exactly once");
    }

    #[test]
    fn entity_fact_groups() {
        let (raw, db) = table1();
        let hp = raw.entity_id("Harry Potter").unwrap();
        let p4 = raw.entity_id("Pirates 4").unwrap();
        assert_eq!(db.facts_of_entity(hp).len(), 4);
        assert_eq!(db.facts_of_entity(p4).len(), 1);
        for &f in db.facts_of_entity(hp) {
            assert_eq!(db.fact(f).entity, hp);
        }
        assert_eq!(db.entity_ids().count(), 2);
    }

    #[test]
    fn positive_count_per_fact() {
        let (raw, db) = table1();
        let daniel = fact_id(&raw, &db, "Harry Potter", "Daniel Radcliffe");
        assert_eq!(db.positive_count(daniel), 3);
        let rupert = fact_id(&raw, &db, "Harry Potter", "Rupert Grint");
        assert_eq!(db.positive_count(rupert), 1);
    }

    #[test]
    fn from_parts_rejects_duplicate_claim() {
        let facts = vec![Fact {
            entity: EntityId::new(0),
            attr: AttrId::new(0),
        }];
        let claims = vec![
            Claim {
                fact: FactId::new(0),
                source: SourceId::new(0),
                observation: true,
            },
            Claim {
                fact: FactId::new(0),
                source: SourceId::new(0),
                observation: false,
            },
        ];
        let r = std::panic::catch_unwind(|| ClaimDb::from_parts(facts, claims, 1));
        assert!(r.is_err());
    }

    #[test]
    fn from_parts_rejects_out_of_range_fact() {
        let claims = vec![Claim {
            fact: FactId::new(3),
            source: SourceId::new(0),
            observation: true,
        }];
        let r = std::panic::catch_unwind(|| ClaimDb::from_parts(vec![], claims, 1));
        assert!(r.is_err());
    }

    #[test]
    fn empty_claimdb() {
        let db = ClaimDb::from_parts(vec![], vec![], 0);
        assert_eq!(db.num_facts(), 0);
        assert_eq!(db.num_claims(), 0);
        assert_eq!(db.num_entities(), 0);
        assert_eq!(db.all_claims().len(), 0);
    }

    #[test]
    fn positive_facts_of_source_filters_negatives() {
        let (raw, db) = table1();
        let netflix = raw.source_id("Netflix").unwrap();
        let pos: Vec<FactId> = db.positive_facts_of_source(netflix).collect();
        // Netflix asserts only Daniel Radcliffe.
        assert_eq!(pos.len(), 1);
        assert_eq!(raw.attr_name(db.fact(pos[0]).attr), "Daniel Radcliffe");
    }

    #[test]
    fn all_claims_matches_accessors() {
        let (_, db) = table1();
        let all = db.all_claims();
        assert_eq!(all.len(), db.num_claims());
        assert_eq!(
            all.iter().filter(|c| c.observation).count(),
            db.num_positive_claims()
        );
    }
}
