//! Text I/O for raw databases and ground-truth labels.
//!
//! Files are plain CSV with a header row. The writer quotes any field
//! containing a comma, quote, or newline (doubling embedded quotes); the
//! reader accepts both quoted and bare fields. Implemented here rather
//! than pulling in a CSV dependency: the workspace needs exactly this
//! subset and nothing more (see DESIGN.md §2).
//!
//! Formats:
//!
//! * **triples**: `entity,attribute,source` — one raw-database row per
//!   line (paper Definition 1).
//! * **labels**: `entity,attribute,truth` with `truth ∈ {true, false}` —
//!   ground truth for an evaluation subset.

use std::fmt;
use std::io::{BufRead, Write};

use crate::claims::ClaimDb;
use crate::ids::FactId;
use crate::raw::{RawDatabase, RawDatabaseBuilder};
use crate::truth::GroundTruth;

/// Errors from reading triple/label files.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed content at a 1-based line number.
    Parse {
        /// 1-based line number of the offending record.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Writes one CSV field, quoting when needed.
fn write_field_csv<W: Write>(w: &mut W, field: &str) -> std::io::Result<()> {
    if field.contains([',', '"', '\n', '\r']) {
        let escaped = field.replace('"', "\"\"");
        write!(w, "\"{escaped}\"")
    } else {
        w.write_all(field.as_bytes())
    }
}

/// Splits one CSV record into fields, honouring RFC-4180-style quotes
/// (doubled quotes escape; quoted fields may contain commas). Public so
/// CSV-consuming front ends (the `ltm` CLI) parse rows exactly the way
/// [`read_triples`]/[`write_triples`] round-trip them.
pub fn split_record(line: &str, line_no: usize) -> Result<Vec<String>, IoError> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    loop {
        match chars.peek() {
            None => {
                fields.push(std::mem::take(&mut cur));
                return Ok(fields);
            }
            Some('"') => {
                chars.next();
                // Quoted field: read until the closing quote.
                loop {
                    match chars.next() {
                        None => {
                            return Err(IoError::Parse {
                                line: line_no,
                                message: "unterminated quoted field".into(),
                            })
                        }
                        Some('"') => {
                            if chars.peek() == Some(&'"') {
                                chars.next();
                                cur.push('"');
                            } else {
                                break;
                            }
                        }
                        Some(c) => cur.push(c),
                    }
                }
                match chars.next() {
                    None => {
                        fields.push(std::mem::take(&mut cur));
                        return Ok(fields);
                    }
                    Some(',') => fields.push(std::mem::take(&mut cur)),
                    Some(c) => {
                        return Err(IoError::Parse {
                            line: line_no,
                            message: format!("unexpected character {c:?} after closing quote"),
                        })
                    }
                }
            }
            Some(_) => {
                // Bare field: read until comma.
                loop {
                    match chars.peek() {
                        None => break,
                        Some(',') => break,
                        Some(_) => cur.push(chars.next().expect("peeked")),
                    }
                }
                match chars.next() {
                    None => {
                        fields.push(std::mem::take(&mut cur));
                        return Ok(fields);
                    }
                    Some(',') => fields.push(std::mem::take(&mut cur)),
                    Some(_) => unreachable!("loop breaks only at comma or end"),
                }
            }
        }
    }
}

/// Writes a raw database as a `entity,attribute,source` CSV with header.
pub fn write_triples<W: Write>(db: &RawDatabase, w: &mut W) -> Result<(), IoError> {
    writeln!(w, "entity,attribute,source")?;
    for (e, a, s) in db.iter_named() {
        write_field_csv(w, e)?;
        w.write_all(b",")?;
        write_field_csv(w, a)?;
        w.write_all(b",")?;
        write_field_csv(w, s)?;
        w.write_all(b"\n")?;
    }
    Ok(())
}

/// Reads a `entity,attribute,source` CSV (with header) into a raw
/// database. Duplicate triples are deduplicated per Definition 1.
pub fn read_triples<R: BufRead>(r: R) -> Result<RawDatabase, IoError> {
    let mut builder = RawDatabaseBuilder::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        let line_no = i + 1;
        if line_no == 1 {
            // Header row — validated loosely so files from other tools load.
            continue;
        }
        if line.is_empty() {
            continue;
        }
        let fields = split_record(&line, line_no)?;
        if fields.len() != 3 {
            return Err(IoError::Parse {
                line: line_no,
                message: format!("expected 3 fields, found {}", fields.len()),
            });
        }
        builder.add(&fields[0], &fields[1], &fields[2]);
    }
    Ok(builder.build())
}

/// Writes ground truth as `entity,attribute,truth` rows for every labeled
/// fact, resolving names through `raw` and fact ids through `claims`.
pub fn write_labels<W: Write>(
    truth: &GroundTruth,
    raw: &RawDatabase,
    claims: &ClaimDb,
    w: &mut W,
) -> Result<(), IoError> {
    writeln!(w, "entity,attribute,truth")?;
    for (f, label) in truth.iter() {
        let fact = claims.fact(f);
        write_field_csv(w, raw.entity_name(fact.entity))?;
        w.write_all(b",")?;
        write_field_csv(w, raw.attr_name(fact.attr))?;
        writeln!(w, ",{label}")?;
    }
    Ok(())
}

/// Reads ground-truth labels, resolving `(entity, attribute)` pairs to
/// fact ids through `raw`/`claims`.
///
/// Unknown entities or attributes are an error: labels must refer to facts
/// present in the database.
pub fn read_labels<R: BufRead>(
    r: R,
    raw: &RawDatabase,
    claims: &ClaimDb,
) -> Result<GroundTruth, IoError> {
    // Index facts by (entity, attr) once.
    let mut fact_of = std::collections::HashMap::new();
    for f in claims.fact_ids() {
        let fact = claims.fact(f);
        fact_of.insert((fact.entity, fact.attr), f);
    }
    let mut truth = GroundTruth::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        let line_no = i + 1;
        if line_no == 1 || line.is_empty() {
            continue;
        }
        let fields = split_record(&line, line_no)?;
        if fields.len() != 3 {
            return Err(IoError::Parse {
                line: line_no,
                message: format!("expected 3 fields, found {}", fields.len()),
            });
        }
        let entity = raw.entity_id(&fields[0]).ok_or_else(|| IoError::Parse {
            line: line_no,
            message: format!("unknown entity {:?}", fields[0]),
        })?;
        let attr = raw.attr_id(&fields[1]).ok_or_else(|| IoError::Parse {
            line: line_no,
            message: format!("unknown attribute {:?}", fields[1]),
        })?;
        let fact: FactId = *fact_of.get(&(entity, attr)).ok_or_else(|| IoError::Parse {
            line: line_no,
            message: format!("no fact for ({:?}, {:?})", fields[0], fields[1]),
        })?;
        let label = match fields[2].trim() {
            "true" | "True" | "TRUE" | "1" => true,
            "false" | "False" | "FALSE" | "0" => false,
            other => {
                return Err(IoError::Parse {
                    line: line_no,
                    message: format!("invalid truth value {other:?}"),
                })
            }
        };
        truth.insert(entity, fact, label);
    }
    Ok(truth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raw::RawDatabaseBuilder;

    fn sample_db() -> RawDatabase {
        let mut b = RawDatabaseBuilder::new();
        b.add("Harry Potter", "Daniel Radcliffe", "IMDB");
        b.add("Harry Potter", "Emma Watson", "IMDB");
        b.add(
            "Gödel, Escher, Bach",
            "Douglas \"Doug\" Hofstadter",
            "a,b seller",
        );
        b.build()
    }

    #[test]
    fn triples_roundtrip_with_escaping() {
        let db = sample_db();
        let mut buf = Vec::new();
        write_triples(&db, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("entity,attribute,source\n"));
        assert!(text.contains("\"Gödel, Escher, Bach\""));
        assert!(text.contains("\"Douglas \"\"Doug\"\" Hofstadter\""));

        let back = read_triples(std::io::Cursor::new(buf)).unwrap();
        let mut orig: Vec<_> = db.iter_named().collect();
        let mut got: Vec<_> = back.iter_named().collect();
        orig.sort();
        got.sort();
        assert_eq!(orig, got);
    }

    #[test]
    fn read_skips_blank_lines_and_dedups() {
        let text = "entity,attribute,source\ne,a,s\n\ne,a,s\ne,b,s\n";
        let db = read_triples(std::io::Cursor::new(text)).unwrap();
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn read_rejects_wrong_arity() {
        let text = "entity,attribute,source\nonly,two\n";
        let err = read_triples(std::io::Cursor::new(text)).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 2, .. }), "{err}");
    }

    #[test]
    fn read_rejects_unterminated_quote() {
        let text = "entity,attribute,source\n\"unterminated,a,s\n";
        let err = read_triples(std::io::Cursor::new(text)).unwrap_err();
        assert!(err.to_string().contains("unterminated"));
    }

    #[test]
    fn labels_roundtrip() {
        let db = sample_db();
        let claims = ClaimDb::from_raw(&db);
        let mut truth = GroundTruth::new();
        for f in claims.fact_ids() {
            let fact = claims.fact(f);
            truth.insert(fact.entity, f, f.raw() % 2 == 0);
        }
        let mut buf = Vec::new();
        write_labels(&truth, &db, &claims, &mut buf).unwrap();
        let back = read_labels(std::io::Cursor::new(buf), &db, &claims).unwrap();
        assert_eq!(truth, back);
    }

    #[test]
    fn labels_reject_unknown_entity() {
        let db = sample_db();
        let claims = ClaimDb::from_raw(&db);
        let text = "entity,attribute,truth\nNo Such Movie,Nobody,true\n";
        let err = read_labels(std::io::Cursor::new(text), &db, &claims).unwrap_err();
        assert!(err.to_string().contains("unknown entity"));
    }

    #[test]
    fn labels_accept_numeric_booleans() {
        let db = sample_db();
        let claims = ClaimDb::from_raw(&db);
        let text = "entity,attribute,truth\nHarry Potter,Emma Watson,1\n";
        let truth = read_labels(std::io::Cursor::new(text), &db, &claims).unwrap();
        assert_eq!(truth.num_labeled_facts(), 1);
        assert_eq!(truth.num_true(), 1);
    }

    #[test]
    fn labels_reject_bad_boolean() {
        let db = sample_db();
        let claims = ClaimDb::from_raw(&db);
        let text = "entity,attribute,truth\nHarry Potter,Emma Watson,maybe\n";
        let err = read_labels(std::io::Cursor::new(text), &db, &claims).unwrap_err();
        assert!(err.to_string().contains("invalid truth value"));
    }
}
