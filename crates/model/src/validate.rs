//! Structural validation of claim databases.
//!
//! `ClaimDb`'s constructors establish the Definition-3 invariants; this
//! module re-checks them on demand. Production code never needs it (the
//! constructors are the only way to build a `ClaimDb`), but it earns its
//! keep in three places: as a debugging aid when writing new generators,
//! as the oracle for failure-injection tests, and as documentation of
//! exactly which invariants the inference code relies on.

use std::collections::BTreeSet;

use crate::claims::ClaimDb;
use crate::ids::ClaimId;

/// A violated invariant, with enough context to locate it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A fact's claim range is not sorted by source or contains a
    /// duplicate source.
    UnsortedOrDuplicateClaims {
        /// The offending fact.
        fact: u32,
    },
    /// The source-major view disagrees with the fact-major arrays.
    SourceViewMismatch {
        /// The offending source.
        source: u32,
    },
    /// Two facts of the same entity are claimed by different source sets
    /// (Definition 3: every covering source claims every fact of the
    /// entity).
    CoverageMismatch {
        /// The entity whose facts disagree.
        entity: u32,
    },
    /// Stored positive-claim count disagrees with the observations.
    PositiveCountMismatch {
        /// The stored count.
        stored: usize,
        /// The recomputed count.
        actual: usize,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::UnsortedOrDuplicateClaims { fact } => {
                write!(f, "fact {fact}: claims unsorted or duplicate source")
            }
            Violation::SourceViewMismatch { source } => {
                write!(f, "source {source}: source-major view inconsistent")
            }
            Violation::CoverageMismatch { entity } => {
                write!(f, "entity {entity}: facts claimed by differing source sets")
            }
            Violation::PositiveCountMismatch { stored, actual } => {
                write!(f, "positive count {stored} != recomputed {actual}")
            }
        }
    }
}

/// Checks every structural invariant of `db`, returning all violations
/// (empty = consistent).
pub fn check(db: &ClaimDb) -> Vec<Violation> {
    let mut violations = Vec::new();

    // 1. Claims of each fact sorted by source, no duplicates.
    for f in db.fact_ids() {
        let sources = db.fact_claim_sources(f);
        if sources.windows(2).any(|w| w[0] >= w[1]) {
            violations.push(Violation::UnsortedOrDuplicateClaims { fact: f.raw() });
        }
    }

    // 2. Source-major permutation covers every claim exactly once and
    //    agrees on the source.
    let mut seen = vec![false; db.num_claims()];
    let mut mismatch_sources = BTreeSet::new();
    for s in db.source_ids() {
        for &c in db.claims_of_source(s) {
            if db.claim_source(c) != s || seen[c.index()] {
                mismatch_sources.insert(s.raw());
            }
            seen[c.index()] = true;
        }
    }
    if !seen.iter().all(|&x| x) {
        // Some claim missing from the source view; attribute it to its
        // source for the report.
        for (i, &covered) in seen.iter().enumerate() {
            if !covered {
                mismatch_sources.insert(db.claim_source(ClaimId::from_usize(i)).raw());
            }
        }
    }
    violations.extend(
        mismatch_sources
            .into_iter()
            .map(|source| Violation::SourceViewMismatch { source }),
    );

    // 3. Definition 3 coverage: all facts of one entity share one source
    //    set.
    for e in db.entity_ids() {
        let facts = db.facts_of_entity(e);
        let reference: BTreeSet<_> = db.fact_claim_sources(facts[0]).iter().copied().collect();
        for &f in &facts[1..] {
            let here: BTreeSet<_> = db.fact_claim_sources(f).iter().copied().collect();
            if here != reference {
                violations.push(Violation::CoverageMismatch { entity: e.raw() });
                break;
            }
        }
    }

    // 4. Cached positive count.
    let actual = db.fact_ids().map(|f| db.positive_count(f)).sum::<usize>();
    if actual != db.num_positive_claims() {
        violations.push(Violation::PositiveCountMismatch {
            stored: db.num_positive_claims(),
            actual,
        });
    }

    violations
}

/// Convenience: panics with a readable report if `db` is inconsistent.
pub fn assert_consistent(db: &ClaimDb) {
    let violations = check(db);
    assert!(
        violations.is_empty(),
        "ClaimDb inconsistent:\n{}",
        violations
            .iter()
            .map(|v| format!("  - {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::claims::{Claim, Fact};
    use crate::ids::{AttrId, EntityId, FactId, SourceId};
    use crate::raw::RawDatabaseBuilder;

    fn table1_db() -> ClaimDb {
        let mut b = RawDatabaseBuilder::new();
        b.add("Harry Potter", "Daniel Radcliffe", "IMDB");
        b.add("Harry Potter", "Emma Watson", "IMDB");
        b.add("Harry Potter", "Daniel Radcliffe", "Netflix");
        b.add("Pirates 4", "Johnny Depp", "Hulu.com");
        ClaimDb::from_raw(&b.build())
    }

    #[test]
    fn constructed_databases_are_consistent() {
        assert_consistent(&table1_db());
        assert!(check(&ClaimDb::from_parts(vec![], vec![], 0)).is_empty());
    }

    #[test]
    fn from_parts_databases_are_consistent() {
        let facts = vec![
            Fact {
                entity: EntityId::new(0),
                attr: AttrId::new(0),
            },
            Fact {
                entity: EntityId::new(0),
                attr: AttrId::new(1),
            },
        ];
        let claims = vec![
            Claim {
                fact: FactId::new(0),
                source: SourceId::new(0),
                observation: true,
            },
            Claim {
                fact: FactId::new(0),
                source: SourceId::new(1),
                observation: false,
            },
            Claim {
                fact: FactId::new(1),
                source: SourceId::new(0),
                observation: false,
            },
            Claim {
                fact: FactId::new(1),
                source: SourceId::new(1),
                observation: true,
            },
        ];
        assert_consistent(&ClaimDb::from_parts(facts, claims, 2));
    }

    #[test]
    fn detects_coverage_mismatch() {
        // Failure injection: build a from_parts database that violates
        // Definition 3 (legal for synthetic data, flagged by the checker
        // as a coverage mismatch).
        let facts = vec![
            Fact {
                entity: EntityId::new(0),
                attr: AttrId::new(0),
            },
            Fact {
                entity: EntityId::new(0),
                attr: AttrId::new(1),
            },
        ];
        let claims = vec![
            Claim {
                fact: FactId::new(0),
                source: SourceId::new(0),
                observation: true,
            },
            // Fact 1 claimed by a different source set.
            Claim {
                fact: FactId::new(1),
                source: SourceId::new(1),
                observation: true,
            },
        ];
        let db = ClaimDb::from_parts(facts, claims, 2);
        let violations = check(&db);
        assert_eq!(violations, vec![Violation::CoverageMismatch { entity: 0 }]);
    }

    #[test]
    fn violation_display_is_readable() {
        let v = Violation::CoverageMismatch { entity: 7 };
        assert!(v.to_string().contains("entity 7"));
        let v = Violation::PositiveCountMismatch {
            stored: 3,
            actual: 4,
        };
        assert!(v.to_string().contains("3"));
        assert!(v.to_string().contains("4"));
    }

    #[test]
    fn generated_synthetic_data_is_consistent() {
        // The synthetic generator's every-source-claims-every-fact layout
        // trivially satisfies the coverage rule.
        let facts: Vec<Fact> = (0..6)
            .map(|i| Fact {
                entity: EntityId::new(i),
                attr: AttrId::new(0),
            })
            .collect();
        let mut claims = Vec::new();
        for f in 0..6u32 {
            for s in 0..3u32 {
                claims.push(Claim {
                    fact: FactId::new(f),
                    source: SourceId::new(s),
                    observation: (f + s) % 2 == 0,
                });
            }
        }
        assert_consistent(&ClaimDb::from_parts(facts, claims, 3));
    }
}
