//! Ground-truth labels and predicted truth assignments
//! (paper Definition 4).
//!
//! The paper evaluates on a 100-entity labeled subset of each dataset: the
//! model is fit on everything, predictions are compared against human
//! labels only where labels exist. [`GroundTruth`] holds such a partial
//! labeling; [`TruthAssignment`] is the per-fact posterior `p(t_f = 1)`
//! produced by any of the inference methods.

use std::collections::{BTreeSet, HashMap};

use crate::ids::{EntityId, FactId};

/// A (possibly partial) assignment of Boolean truth to facts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GroundTruth {
    labels: HashMap<FactId, bool>,
    entities: BTreeSet<EntityId>,
}

impl GroundTruth {
    /// Creates an empty labeling.
    pub fn new() -> Self {
        Self::default()
    }

    /// Labels fact `f` (belonging to `entity`) as true or false.
    /// Re-labeling a fact overwrites the previous label.
    pub fn insert(&mut self, entity: EntityId, f: FactId, truth: bool) {
        self.labels.insert(f, truth);
        self.entities.insert(entity);
    }

    /// The label of fact `f`, if labeled.
    pub fn label(&self, f: FactId) -> Option<bool> {
        self.labels.get(&f).copied()
    }

    /// Number of labeled facts.
    pub fn num_labeled_facts(&self) -> usize {
        self.labels.len()
    }

    /// Number of entities with at least one labeled fact.
    pub fn num_labeled_entities(&self) -> usize {
        self.entities.len()
    }

    /// Whether no fact is labeled.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Iterates `(fact, label)` in ascending fact order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (FactId, bool)> + '_ {
        let mut keys: Vec<FactId> = self.labels.keys().copied().collect();
        keys.sort_unstable();
        keys.into_iter().map(move |f| (f, self.labels[&f]))
    }

    /// The labeled entities in ascending id order.
    pub fn entities(&self) -> impl Iterator<Item = EntityId> + '_ {
        self.entities.iter().copied()
    }

    /// Whether `entity` has labeled facts.
    pub fn contains_entity(&self, entity: EntityId) -> bool {
        self.entities.contains(&entity)
    }

    /// Number of labeled facts whose label is `true`.
    pub fn num_true(&self) -> usize {
        self.labels.values().filter(|&&t| t).count()
    }
}

/// Per-fact truth probabilities produced by an inference method.
///
/// Index `i` holds `p(t_i = 1)`. Thresholding at `0.5` (inclusive, as in
/// the paper: "equal to or above") yields Boolean predictions.
#[derive(Debug, Clone, PartialEq)]
pub struct TruthAssignment {
    probs: Vec<f64>,
}

impl TruthAssignment {
    /// Wraps per-fact probabilities.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]` or NaN.
    pub fn new(probs: Vec<f64>) -> Self {
        for (i, &p) in probs.iter().enumerate() {
            assert!(
                (0.0..=1.0).contains(&p),
                "TruthAssignment: p(t_{i}) = {p} outside [0, 1]"
            );
        }
        Self { probs }
    }

    /// Number of facts covered.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// Whether the assignment covers no facts.
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// `p(t_f = 1)`.
    #[inline]
    pub fn prob(&self, f: FactId) -> f64 {
        self.probs[f.index()]
    }

    /// The raw probability vector, indexed by fact id.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Boolean prediction at `threshold`: true iff `p ≥ threshold`.
    #[inline]
    pub fn is_true(&self, f: FactId, threshold: f64) -> bool {
        self.prob(f) >= threshold
    }

    /// Iterates `(fact, probability)`.
    pub fn iter(&self) -> impl Iterator<Item = (FactId, f64)> + '_ {
        self.probs
            .iter()
            .enumerate()
            .map(|(i, &p)| (FactId::from_usize(i), p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_truth_insert_and_query() {
        let mut gt = GroundTruth::new();
        gt.insert(EntityId::new(0), FactId::new(0), true);
        gt.insert(EntityId::new(0), FactId::new(1), false);
        gt.insert(EntityId::new(1), FactId::new(2), true);
        assert_eq!(gt.num_labeled_facts(), 3);
        assert_eq!(gt.num_labeled_entities(), 2);
        assert_eq!(gt.label(FactId::new(1)), Some(false));
        assert_eq!(gt.label(FactId::new(9)), None);
        assert_eq!(gt.num_true(), 2);
        assert!(gt.contains_entity(EntityId::new(1)));
        assert!(!gt.contains_entity(EntityId::new(7)));
    }

    #[test]
    fn relabeling_overwrites() {
        let mut gt = GroundTruth::new();
        gt.insert(EntityId::new(0), FactId::new(0), true);
        gt.insert(EntityId::new(0), FactId::new(0), false);
        assert_eq!(gt.num_labeled_facts(), 1);
        assert_eq!(gt.label(FactId::new(0)), Some(false));
    }

    #[test]
    fn iter_is_sorted_by_fact() {
        let mut gt = GroundTruth::new();
        gt.insert(EntityId::new(0), FactId::new(5), true);
        gt.insert(EntityId::new(0), FactId::new(1), false);
        gt.insert(EntityId::new(0), FactId::new(3), true);
        let order: Vec<u32> = gt.iter().map(|(f, _)| f.raw()).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn assignment_threshold_inclusive() {
        let t = TruthAssignment::new(vec![0.5, 0.499_999, 1.0, 0.0]);
        assert!(t.is_true(FactId::new(0), 0.5), "0.5 >= 0.5 must be true");
        assert!(!t.is_true(FactId::new(1), 0.5));
        assert!(t.is_true(FactId::new(2), 0.5));
        assert!(!t.is_true(FactId::new(3), 0.5));
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn assignment_rejects_invalid_probability() {
        TruthAssignment::new(vec![0.2, 1.2]);
    }

    #[test]
    fn assignment_iter_pairs() {
        let t = TruthAssignment::new(vec![0.1, 0.9]);
        let v: Vec<(u32, f64)> = t.iter().map(|(f, p)| (f.raw(), p)).collect();
        assert_eq!(v, vec![(0, 0.1), (1, 0.9)]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }
}
