//! Data substrate for the `latent-truth` workspace: the paper's data model
//! (Zhao et al., VLDB 2012, Section 2).
//!
//! The truth-finding problem consumes a **raw database** of `(entity,
//! attribute, source)` triples — e.g. `("Harry Potter", "Daniel Radcliffe",
//! "IMDB")` — and re-casts it into
//!
//! 1. a **fact table** of distinct `(entity, attribute)` pairs
//!    (Definition 2), and
//! 2. a **claim table** (Definition 3) in which, for every fact `f` and
//!    every source `s` that covers `f`'s entity, there is exactly one claim:
//!    *positive* if `s` asserted `f` in the raw database, *negative* if `s`
//!    asserted some other fact about the same entity but not `f`. Sources
//!    that never mention the entity make **no** claim about its facts.
//!
//! This crate owns those representations:
//!
//! * [`ids`] — small typed index types (`EntityId`, `AttrId`, `SourceId`,
//!   `FactId`, `ClaimId`) so the adjacency arrays cannot be mis-indexed.
//! * [`interner`] — string interning for entity / attribute / source names.
//! * [`raw`] — the deduplicated raw triple database and its builder.
//! * [`claims`] — [`ClaimDb`]: the fact table plus the claim table in a
//!   compressed-sparse-row layout with fact→claims, source→claims, and
//!   entity→facts adjacency; this is the structure every inference method
//!   in the workspace consumes.
//! * [`truth`] — ground-truth labels for evaluation subsets, and predicted
//!   truth assignments.
//! * [`io`] — a small escaped-CSV reader/writer for triple files and label
//!   files (the workspace deliberately avoids a CSV dependency).
//! * [`dataset`] — a bundle of raw database + claims + ground truth with
//!   summary statistics.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod claims;
pub mod dataset;
pub mod ids;
pub mod interner;
pub mod io;
pub mod raw;
pub mod truth;
pub mod validate;

pub use claims::{Claim, ClaimDb, Fact};
pub use dataset::{Dataset, DatasetStats};
pub use ids::{AttrId, ClaimId, EntityId, FactId, SourceId};
pub use interner::Interner;
pub use raw::{RawDatabase, RawDatabaseBuilder, RawRow};
pub use truth::{GroundTruth, TruthAssignment};
