//! The raw triple database (paper Definition 1).
//!
//! A raw database is a set of unique `(entity, attribute, source)` rows.
//! [`RawDatabaseBuilder`] interns the strings, deduplicates rows, and
//! produces an immutable [`RawDatabase`] whose rows are sorted by
//! `(entity, attribute, source)` for deterministic downstream construction.

use std::collections::HashSet;

use crate::ids::{AttrId, EntityId, SourceId};
use crate::interner::Interner;

/// One raw row `(e, a, c)`: source `c` asserts attribute value `a` for
/// entity `e` (paper Definition 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RawRow {
    /// The entity being described.
    pub entity: EntityId,
    /// The asserted attribute value.
    pub attr: AttrId,
    /// The asserting source.
    pub source: SourceId,
}

/// An immutable, deduplicated raw database with its interned vocabularies.
#[derive(Debug, Clone, Default)]
pub struct RawDatabase {
    pub(crate) entities: Interner<EntityId>,
    pub(crate) attrs: Interner<AttrId>,
    pub(crate) sources: Interner<SourceId>,
    pub(crate) rows: Vec<RawRow>,
}

impl RawDatabase {
    /// The deduplicated rows, sorted by `(entity, attr, source)`.
    pub fn rows(&self) -> &[RawRow] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the database has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of distinct entities.
    pub fn num_entities(&self) -> usize {
        self.entities.len()
    }

    /// Number of distinct attribute values.
    pub fn num_attrs(&self) -> usize {
        self.attrs.len()
    }

    /// Number of distinct sources.
    pub fn num_sources(&self) -> usize {
        self.sources.len()
    }

    /// Resolves an entity id to its name.
    pub fn entity_name(&self, id: EntityId) -> &str {
        self.entities.resolve(id)
    }

    /// Resolves an attribute id to its value string.
    pub fn attr_name(&self, id: AttrId) -> &str {
        self.attrs.resolve(id)
    }

    /// Resolves a source id to its name.
    pub fn source_name(&self, id: SourceId) -> &str {
        self.sources.resolve(id)
    }

    /// Looks up an entity by name.
    pub fn entity_id(&self, name: &str) -> Option<EntityId> {
        self.entities.get(name)
    }

    /// Looks up an attribute value by string.
    pub fn attr_id(&self, name: &str) -> Option<AttrId> {
        self.attrs.get(name)
    }

    /// Looks up a source by name.
    pub fn source_id(&self, name: &str) -> Option<SourceId> {
        self.sources.get(name)
    }

    /// Iterates rows rehydrated as `(entity, attribute, source)` names.
    pub fn iter_named(&self) -> impl Iterator<Item = (&str, &str, &str)> + '_ {
        self.rows.iter().map(move |r| {
            (
                self.entity_name(r.entity),
                self.attr_name(r.attr),
                self.source_name(r.source),
            )
        })
    }
}

/// Accumulates triples into a [`RawDatabase`].
#[derive(Debug, Clone, Default)]
pub struct RawDatabaseBuilder {
    entities: Interner<EntityId>,
    attrs: Interner<AttrId>,
    sources: Interner<SourceId>,
    rows: Vec<RawRow>,
    seen: HashSet<RawRow>,
}

impl RawDatabaseBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one `(entity, attribute, source)` triple by name. Duplicate
    /// triples are silently ignored (Definition 1: each row is unique).
    ///
    /// Returns `true` if the row was new.
    pub fn add(&mut self, entity: &str, attr: &str, source: &str) -> bool {
        let row = RawRow {
            entity: self.entities.intern(entity),
            attr: self.attrs.intern(attr),
            source: self.sources.intern(source),
        };
        self.add_row(row)
    }

    /// Adds a pre-interned row; ids must come from this builder's
    /// vocabularies (enforced only by debug assertion, since generators add
    /// millions of rows).
    pub fn add_row(&mut self, row: RawRow) -> bool {
        debug_assert!(row.entity.index() < self.entities.len());
        debug_assert!(row.attr.index() < self.attrs.len());
        debug_assert!(row.source.index() < self.sources.len());
        if self.seen.insert(row) {
            self.rows.push(row);
            true
        } else {
            false
        }
    }

    /// Interns an entity name without adding a row (used by generators to
    /// pre-register vocabularies in a deterministic order).
    pub fn intern_entity(&mut self, name: &str) -> EntityId {
        self.entities.intern(name)
    }

    /// Interns an attribute value without adding a row.
    pub fn intern_attr(&mut self, name: &str) -> AttrId {
        self.attrs.intern(name)
    }

    /// Interns a source name without adding a row.
    pub fn intern_source(&mut self, name: &str) -> SourceId {
        self.sources.intern(name)
    }

    /// Number of rows added so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Finalises the database; rows are sorted for determinism.
    pub fn build(mut self) -> RawDatabase {
        self.rows.sort_unstable();
        RawDatabase {
            entities: self.entities,
            attrs: self.attrs,
            sources: self.sources,
            rows: self.rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running example of the paper: Table 1.
    pub(crate) fn movie_db() -> RawDatabase {
        let mut b = RawDatabaseBuilder::new();
        b.add("Harry Potter", "Daniel Radcliffe", "IMDB");
        b.add("Harry Potter", "Emma Watson", "IMDB");
        b.add("Harry Potter", "Rupert Grint", "IMDB");
        b.add("Harry Potter", "Daniel Radcliffe", "Netflix");
        b.add("Harry Potter", "Daniel Radcliffe", "BadSource.com");
        b.add("Harry Potter", "Emma Watson", "BadSource.com");
        b.add("Harry Potter", "Johnny Depp", "BadSource.com");
        b.add("Pirates 4", "Johnny Depp", "Hulu.com");
        b.build()
    }

    #[test]
    fn table1_counts() {
        let db = movie_db();
        assert_eq!(db.len(), 8);
        assert_eq!(db.num_entities(), 2);
        assert_eq!(db.num_sources(), 4);
        // Johnny Depp appears for two entities but is one attribute value.
        assert_eq!(db.num_attrs(), 4);
    }

    #[test]
    fn duplicate_rows_ignored() {
        let mut b = RawDatabaseBuilder::new();
        assert!(b.add("e", "a", "s"));
        assert!(!b.add("e", "a", "s"));
        assert_eq!(b.len(), 1);
        assert_eq!(b.build().len(), 1);
    }

    #[test]
    fn rows_sorted_after_build() {
        let mut b = RawDatabaseBuilder::new();
        b.add("z-entity", "a", "s");
        b.add("a-entity", "a", "s");
        let db = b.build();
        let rows = db.rows();
        assert!(rows.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn name_lookup_roundtrip() {
        let db = movie_db();
        let e = db.entity_id("Harry Potter").unwrap();
        assert_eq!(db.entity_name(e), "Harry Potter");
        let s = db.source_id("IMDB").unwrap();
        assert_eq!(db.source_name(s), "IMDB");
        assert!(db.entity_id("Missing Movie").is_none());
    }

    #[test]
    fn iter_named_covers_all_rows() {
        let db = movie_db();
        let named: Vec<_> = db.iter_named().collect();
        assert_eq!(named.len(), 8);
        assert!(named.contains(&("Pirates 4", "Johnny Depp", "Hulu.com")));
    }

    #[test]
    fn empty_database() {
        let db = RawDatabaseBuilder::new().build();
        assert!(db.is_empty());
        assert_eq!(db.num_entities(), 0);
    }
}
