//! The movie-director dataset stand-in (paper §6.1.1, "Movie Director
//! Dataset").
//!
//! The original data came from the Bing movies vertical: 15,073 movies,
//! 33,526 movie-director facts, 108,873 raw rows from 12 sources, 100
//! labeled movies — with non-conflicting movies removed ("we removed those
//! movies that only have one associated director or only appear in one
//! data source").
//!
//! This simulator plants the 12 sources of the paper's Table 8 with
//! two-sided quality profiles seeded from that table — e.g. IMDB with the
//! highest sensitivity but mediocre specificity, Fandango conservative
//! (low sensitivity, high specificity), AMG aggressive (low specificity) —
//! generates claims accordingly, applies the same conflict-only filter,
//! and labels 100 random movies.

use ltm_model::{ClaimDb, Dataset, GroundTruth, RawDatabaseBuilder};
use ltm_stats::dist::Categorical;
use ltm_stats::rng::rng_from_seed;
use rand::seq::index::sample;
use rand::Rng;

use crate::profile::{GeneratedDataset, SourceProfile};

/// Planted profiles: `(name, sensitivity, wrong-director rate per covered
/// movie, coverage)`. Sensitivity/aggressiveness mirror paper Table 8; the
/// coverages are tuned so raw rows land near the paper's 108,873.
const SOURCES: [(&str, f64, f64, f64); 12] = [
    ("imdb", 0.91, 0.100, 0.58),
    ("netflix", 0.89, 0.065, 0.43),
    ("movietickets", 0.86, 0.021, 0.31),
    ("commonsense", 0.81, 0.018, 0.28),
    ("cinemasource", 0.79, 0.014, 0.31),
    ("amg", 0.78, 0.310, 0.34),
    ("yahoomovie", 0.76, 0.100, 0.37),
    ("msnmovie", 0.75, 0.012, 0.37),
    ("zune", 0.74, 0.026, 0.28),
    ("metacritic", 0.68, 0.012, 0.31),
    ("flixster", 0.58, 0.089, 0.31),
    ("fandango", 0.50, 0.010, 0.24),
];

/// Configuration for the movie-director generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MovieConfig {
    /// Movies generated *before* the conflict filter (defaults tuned so
    /// roughly 15k survive, matching the paper).
    pub num_movies_raw: usize,
    /// Movies whose facts are labeled for evaluation (paper: 100).
    pub labeled_entities: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MovieConfig {
    fn default() -> Self {
        Self {
            num_movies_raw: 25_200,
            labeled_entities: 100,
            seed: 2012,
        }
    }
}

/// Generates the simulated movie-director dataset.
pub fn generate(cfg: &MovieConfig) -> GeneratedDataset {
    assert!(cfg.num_movies_raw > 0);
    let mut rng = rng_from_seed(cfg.seed);

    // --- Plan entities ------------------------------------------------------
    // True director counts: co-direction is common in this (conflict-
    // heavy) slice; mean ≈ 1.65.
    let director_count = Categorical::new(&[0.50, 0.35, 0.15]);
    let movie_names: Vec<String> = (0..cfg.num_movies_raw)
        .map(|m| format!("Movie {m:05}"))
        .collect();
    let mut true_directors: Vec<Vec<String>> = Vec::with_capacity(cfg.num_movies_raw);
    let mut wrong_director: Vec<String> = Vec::with_capacity(cfg.num_movies_raw);
    for m in 0..cfg.num_movies_raw {
        let n = director_count.sample(&mut rng) + 1;
        true_directors.push((0..n).map(|i| format!("Director {m:05}-{i}")).collect());
        // One confusable person per movie (producer / writer mix-ups),
        // shared by all sources that err on this movie — this is what makes
        // some false facts corroborated and the dataset "difficult".
        wrong_director.push(format!("Producer {m:05}"));
    }

    // --- Emit rows -----------------------------------------------------------
    let mut builder = RawDatabaseBuilder::new();
    for name in &movie_names {
        builder.intern_entity(name);
    }
    let mut profiles = Vec::with_capacity(SOURCES.len());
    for &(name, sensitivity, fp_rate, coverage) in &SOURCES {
        builder.intern_source(name);
        profiles.push(SourceProfile {
            name: name.to_string(),
            sensitivity,
            false_positives_per_entity: fp_rate,
            coverage,
        });
    }

    for (s, &(name, sensitivity, fp_rate, coverage)) in SOURCES.iter().enumerate() {
        let _ = s;
        let covered = sample(
            &mut rng,
            cfg.num_movies_raw,
            ((cfg.num_movies_raw as f64) * coverage).round() as usize,
        );
        for m in covered.iter() {
            let mut asserted_any = false;
            for d in &true_directors[m] {
                if rng.gen::<f64>() < sensitivity {
                    builder.add(&movie_names[m], d, name);
                    asserted_any = true;
                }
            }
            if rng.gen::<f64>() < fp_rate {
                builder.add(&movie_names[m], &wrong_director[m], name);
                asserted_any = true;
            }
            // A source listing a movie always lists at least one person
            // (feeds carry a primary director); fall back to the first
            // true director.
            if !asserted_any {
                builder.add(&movie_names[m], &true_directors[m][0], name);
            }
        }
    }

    let raw_unfiltered = builder.build();
    let claims_unfiltered = ClaimDb::from_raw(&raw_unfiltered);

    // --- Conflict filter -------------------------------------------------------
    // Keep movies with ≥ 2 distinct director facts and ≥ 2 covering
    // sources, as in the paper.
    let mut keep = vec![false; cfg.num_movies_raw];
    for e in claims_unfiltered.entity_ids() {
        let facts = claims_unfiltered.facts_of_entity(e);
        if facts.len() < 2 {
            continue;
        }
        // Sources covering the entity = sources with any claim on its
        // first fact (every covering source claims every fact of the
        // entity by construction of the claim table).
        let cover = claims_unfiltered.fact_claim_sources(facts[0]).len();
        if cover >= 2 {
            keep[e.index()] = true;
        }
    }

    let mut filtered = RawDatabaseBuilder::new();
    // Re-intern sources first so SourceIds keep the canonical SOURCES
    // order (rows are sorted, so interning on the fly would permute ids
    // and break the profile table and any quality transfer).
    for &(name, ..) in &SOURCES {
        filtered.intern_source(name);
    }
    for row in raw_unfiltered.rows() {
        if keep[row.entity.index()] {
            filtered.add(
                raw_unfiltered.entity_name(row.entity),
                raw_unfiltered.attr_name(row.attr),
                raw_unfiltered.source_name(row.source),
            );
        }
    }
    let raw = filtered.build();
    let claims = ClaimDb::from_raw(&raw);

    // --- Ground truth -----------------------------------------------------------
    let mut full_truth = GroundTruth::new();
    for f in claims.fact_ids() {
        let fact = claims.fact(f);
        let movie_index: usize = raw
            .entity_name(fact.entity)
            .strip_prefix("Movie ")
            .and_then(|s| s.parse().ok())
            .expect("generated movie name");
        let attr = raw.attr_name(fact.attr);
        let is_true = true_directors[movie_index].iter().any(|d| d == attr);
        full_truth.insert(fact.entity, f, is_true);
    }

    let mut eval_truth = GroundTruth::new();
    let surviving: Vec<_> = claims.entity_ids().collect();
    let labeled = sample(
        &mut rng,
        surviving.len(),
        cfg.labeled_entities.min(surviving.len()),
    );
    for i in labeled.iter() {
        let e = surviving[i];
        for &f in claims.facts_of_entity(e) {
            eval_truth.insert(e, f, full_truth.label(f).expect("fully labeled"));
        }
    }

    GeneratedDataset {
        dataset: Dataset::from_parts("movie-directors", raw, claims, eval_truth),
        full_truth,
        profiles,
    }
}

/// Returns an entity-sampled sub-dataset with roughly `num_entities`
/// movies and all their rows — the construction behind the paper's
/// Table 9 runtime scaling study ("randomly sampling 3k, 6k, 9k, and 12k
/// movies from the entire 15k movie dataset and pulling all facts and
/// claims associated with the sampled movies").
pub fn entity_sample(d: &GeneratedDataset, num_entities: usize, seed: u64) -> Dataset {
    let mut rng = rng_from_seed(seed);
    let entities: Vec<_> = d.dataset.claims.entity_ids().collect();
    let take = num_entities.min(entities.len());
    let chosen: std::collections::HashSet<usize> = sample(&mut rng, entities.len(), take)
        .iter()
        .map(|i| entities[i].index())
        .collect();

    let mut builder = RawDatabaseBuilder::new();
    // Keep SourceIds aligned with the parent dataset so per-source quality
    // learned on the full data transfers to the subset (the paper's
    // LTMinc timing protocol relies on this).
    for s in 0..d.dataset.raw.num_sources() {
        builder.intern_source(
            d.dataset
                .raw
                .source_name(ltm_model::SourceId::from_usize(s)),
        );
    }
    for row in d.dataset.raw.rows() {
        if chosen.contains(&row.entity.index()) {
            builder.add(
                d.dataset.raw.entity_name(row.entity),
                d.dataset.raw.attr_name(row.attr),
                d.dataset.raw.source_name(row.source),
            );
        }
    }
    let raw = builder.build();
    let claims = ClaimDb::from_raw(&raw);
    Dataset::from_parts(
        format!("{}-{}k", d.dataset.name, num_entities / 1000),
        raw,
        claims,
        GroundTruth::new(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MovieConfig {
        MovieConfig {
            num_movies_raw: 1_500,
            labeled_entities: 50,
            seed: 3,
        }
    }

    #[test]
    fn default_statistics_near_paper() {
        let d = generate(&MovieConfig::default());
        let s = d.dataset.stats();
        assert_eq!(s.sources, 12);
        // Entities within 5% of 15,073 (measured: 15,176 at the default
        // seed).
        assert!(
            (s.entities as f64 - 15_073.0).abs() / 15_073.0 < 0.05,
            "entities = {}",
            s.entities
        );
        // Facts within 15% of 33,526 (measured: 37,103).
        assert!(
            (s.facts as f64 - 33_526.0).abs() / 33_526.0 < 0.15,
            "facts = {}",
            s.facts
        );
        // Raw rows within 10% of 108,873 (measured: 115,930).
        assert!(
            (s.raw_rows as f64 - 108_873.0).abs() / 108_873.0 < 0.10,
            "rows = {}",
            s.raw_rows
        );
        assert_eq!(s.labeled_entities, 100);
    }

    #[test]
    fn conflict_filter_holds() {
        let d = generate(&small());
        let db = &d.dataset.claims;
        for e in db.entity_ids() {
            let facts = db.facts_of_entity(e);
            assert!(facts.len() >= 2, "movie with < 2 facts survived filter");
            assert!(
                db.fact_claim_sources(facts[0]).len() >= 2,
                "movie covered by < 2 sources survived filter"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&small());
        let b = generate(&small());
        assert_eq!(a.dataset.raw.len(), b.dataset.raw.len());
        assert_eq!(a.full_truth, b.full_truth);
    }

    #[test]
    fn source_ids_align_with_profiles() {
        // The conflict filter rebuilds the raw database; SourceIds must
        // still follow the canonical SOURCES order so `profiles[s]`
        // describes source `s`.
        let d = generate(&small());
        for (i, p) in d.profiles.iter().enumerate() {
            assert_eq!(
                d.dataset
                    .raw
                    .source_name(ltm_model::SourceId::from_usize(i)),
                p.name,
                "profile {i} misaligned"
            );
        }
    }

    #[test]
    fn entity_sample_preserves_source_ids() {
        let d = generate(&small());
        let sub = entity_sample(&d, 100, 42);
        for s in 0..d.dataset.raw.num_sources() {
            let sid = ltm_model::SourceId::from_usize(s);
            assert_eq!(
                sub.raw.source_name(sid),
                d.dataset.raw.source_name(sid),
                "source {s} renumbered in subset"
            );
        }
    }

    #[test]
    fn planted_quality_visible_in_raw_rates() {
        // IMDB (sens 0.91) should assert a much larger share of the true
        // directors it covers than Fandango (sens 0.50).
        let d = generate(&small());
        let raw = &d.dataset.raw;
        let db = &d.dataset.claims;
        let rate = |name: &str| {
            let s = raw.source_id(name).unwrap();
            let mut pos = 0usize;
            let mut total = 0usize;
            for &c in db.claims_of_source(s) {
                let f = db.claim_fact(c);
                if d.full_truth.label(f) == Some(true) {
                    total += 1;
                    pos += db.claim_observation(c) as usize;
                }
            }
            pos as f64 / total.max(1) as f64
        };
        let imdb = rate("imdb");
        let fandango = rate("fandango");
        assert!(
            imdb > fandango + 0.2,
            "imdb {imdb:.2} vs fandango {fandango:.2}"
        );
    }

    #[test]
    fn amg_generates_most_false_positives() {
        let d = generate(&small());
        let raw = &d.dataset.raw;
        let db = &d.dataset.claims;
        let fp_count = |name: &str| {
            let s = raw.source_id(name).unwrap();
            db.claims_of_source(s)
                .iter()
                .filter(|&&c| {
                    db.claim_observation(c) && d.full_truth.label(db.claim_fact(c)) == Some(false)
                })
                .count() as f64
                / db.claims_of_source(s).len().max(1) as f64
        };
        assert!(fp_count("amg") > fp_count("msnmovie"));
        assert!(fp_count("amg") > fp_count("fandango"));
    }

    #[test]
    fn entity_sample_subsets_rows() {
        let d = generate(&small());
        let total_entities = d.dataset.claims.entity_ids().count();
        let sub = entity_sample(&d, total_entities / 2, 11);
        assert!(sub.raw.len() < d.dataset.raw.len());
        assert!(sub.claims.num_facts() < d.dataset.claims.num_facts());
        // Sampled entities keep all their original rows: claims per kept
        // movie should be unchanged. Spot-check via stats ratio.
        let full_ratio = d.dataset.raw.len() as f64 / total_entities as f64;
        let sub_entities = sub.claims.entity_ids().count();
        let sub_ratio = sub.raw.len() as f64 / sub_entities as f64;
        assert!((full_ratio - sub_ratio).abs() / full_ratio < 0.15);
    }

    #[test]
    fn labeled_subset_size() {
        let d = generate(&small());
        assert_eq!(d.eval_truth().num_labeled_entities(), 50);
        // Labeled facts are facts of labeled entities only.
        for (f, _) in d.eval_truth().iter() {
            let e = d.dataset.claims.fact(f).entity;
            assert!(d.eval_truth().contains_entity(e));
        }
    }
}
