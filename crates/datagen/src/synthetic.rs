//! The paper's synthetic stress test (§6.1, "Synthetic Dataset";
//! evaluated in Figure 4).
//!
//! "We follow the generative process described in Section 4 to generate
//! this synthetic dataset. There are 10000 facts, 20 sources, and for
//! simplicity each source makes a claim with regard to each fact, i.e.,
//! 200000 claims in total."
//!
//! Generation runs the Latent Truth Model forward:
//!
//! 1. per source `k`: `φ⁰ₖ ~ Beta(α₀)` (false-positive rate),
//!    `φ¹ₖ ~ Beta(α₁)` (sensitivity);
//! 2. per fact `f`: `θ_f ~ Beta(β)`, `t_f ~ Bernoulli(θ_f)`;
//! 3. per (fact, source): `o ~ Bernoulli(φ^{t_f}_k)`.
//!
//! Every fact is its own entity (the synthetic test has no entity
//! structure), and claims are emitted directly — both polarities — rather
//! than via a raw triple database.

use ltm_model::{
    AttrId, Claim, ClaimDb, EntityId, Fact, FactId, GroundTruth, SourceId, TruthAssignment,
};
use ltm_stats::dist::Beta;
use ltm_stats::rng::rng_from_seed;
use rand::Rng;

/// Configuration for the synthetic generator. Defaults match the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticConfig {
    /// Number of facts (paper: 10000).
    pub num_facts: usize,
    /// Number of sources (paper: 20).
    pub num_sources: usize,
    /// `α₀ = (prior FP count, prior TN count)`: expected specificity is
    /// `1 − α₀.0/(α₀.0+α₀.1)`. Paper sweeps this from `(90,10)` to
    /// `(10,90)`.
    pub alpha0: (f64, f64),
    /// `α₁ = (prior TP count, prior FN count)`: expected sensitivity is
    /// `α₁.0/(α₁.0+α₁.1)`. Paper sweeps `(10,90)` to `(90,10)`.
    pub alpha1: (f64, f64),
    /// `β = (prior true count, prior false count)`. Paper: `(10, 10)`.
    pub beta: (f64, f64),
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self {
            num_facts: 10_000,
            num_sources: 20,
            alpha0: (10.0, 90.0),
            alpha1: (90.0, 10.0),
            beta: (10.0, 10.0),
            seed: 7,
        }
    }
}

impl SyntheticConfig {
    /// A configuration with expected sensitivity `s` (prior strength 100),
    /// keeping everything else at the defaults — one point on the
    /// Figure 4 sensitivity sweep.
    pub fn with_expected_sensitivity(s: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&s), "sensitivity must be in [0,1]");
        Self {
            alpha1: (100.0 * s, 100.0 * (1.0 - s)),
            seed,
            ..Self::default()
        }
    }

    /// A configuration with expected specificity `s` (prior strength 100)
    /// and expected sensitivity 0.9 — one point on the Figure 4
    /// specificity sweep.
    pub fn with_expected_specificity(s: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&s), "specificity must be in [0,1]");
        Self {
            alpha0: (100.0 * (1.0 - s), 100.0 * s),
            alpha1: (90.0, 10.0),
            seed,
            ..Self::default()
        }
    }
}

/// A generated synthetic dataset.
#[derive(Debug, Clone)]
pub struct SyntheticData {
    /// The claim database (every source claims every fact).
    pub claims: ClaimDb,
    /// Ground-truth label per fact.
    pub truth: Vec<bool>,
    /// Ground truth in evaluation form (every fact labeled).
    pub ground: GroundTruth,
    /// The drawn per-source false-positive rates `φ⁰`.
    pub phi0: Vec<f64>,
    /// The drawn per-source sensitivities `φ¹`.
    pub phi1: Vec<f64>,
}

impl SyntheticData {
    /// Ground truth as a degenerate probability assignment (for metric
    /// computations that want the oracle).
    pub fn truth_assignment(&self) -> TruthAssignment {
        TruthAssignment::new(self.truth.iter().map(|&t| t as u8 as f64).collect())
    }
}

/// Runs the generative process of paper §4 forward.
pub fn generate(cfg: &SyntheticConfig) -> SyntheticData {
    assert!(cfg.num_facts > 0, "num_facts must be positive");
    assert!(cfg.num_sources > 0, "num_sources must be positive");
    let mut rng = rng_from_seed(cfg.seed);

    let beta_phi0 = Beta::new(cfg.alpha0.0, cfg.alpha0.1);
    let beta_phi1 = Beta::new(cfg.alpha1.0, cfg.alpha1.1);
    let beta_theta = Beta::new(cfg.beta.0, cfg.beta.1);

    let phi0: Vec<f64> = (0..cfg.num_sources)
        .map(|_| beta_phi0.sample(&mut rng))
        .collect();
    let phi1: Vec<f64> = (0..cfg.num_sources)
        .map(|_| beta_phi1.sample(&mut rng))
        .collect();

    let mut facts = Vec::with_capacity(cfg.num_facts);
    let mut truth = Vec::with_capacity(cfg.num_facts);
    let mut claims = Vec::with_capacity(cfg.num_facts * cfg.num_sources);
    let mut ground = GroundTruth::new();

    for i in 0..cfg.num_facts {
        let f = FactId::from_usize(i);
        let entity = EntityId::from_usize(i);
        facts.push(Fact {
            entity,
            attr: AttrId::new(0),
        });
        let theta = beta_theta.sample(&mut rng);
        let t = rng.gen::<f64>() < theta;
        truth.push(t);
        ground.insert(entity, f, t);
        for k in 0..cfg.num_sources {
            let p = if t { phi1[k] } else { phi0[k] };
            claims.push(Claim {
                fact: f,
                source: SourceId::from_usize(k),
                observation: rng.gen::<f64>() < p,
            });
        }
    }

    SyntheticData {
        claims: ClaimDb::from_parts(facts, claims, cfg.num_sources),
        truth,
        ground,
        phi0,
        phi1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SyntheticConfig {
        SyntheticConfig {
            num_facts: 2_000,
            num_sources: 10,
            seed: 99,
            ..Default::default()
        }
    }

    #[test]
    fn shape_matches_config() {
        let d = generate(&small());
        assert_eq!(d.claims.num_facts(), 2_000);
        assert_eq!(d.claims.num_sources(), 10);
        assert_eq!(
            d.claims.num_claims(),
            20_000,
            "every source claims every fact"
        );
        assert_eq!(d.truth.len(), 2_000);
        assert_eq!(d.ground.num_labeled_facts(), 2_000);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&small());
        let b = generate(&small());
        assert_eq!(a.truth, b.truth);
        assert_eq!(a.phi0, b.phi0);
        assert_eq!(
            a.claims.num_positive_claims(),
            b.claims.num_positive_claims()
        );
        let c = generate(&SyntheticConfig {
            seed: 100,
            ..small()
        });
        assert_ne!(a.truth, c.truth);
    }

    #[test]
    fn truth_fraction_tracks_beta_mean() {
        // β = (10, 10) → expected ~50% true facts.
        let d = generate(&small());
        let frac = d.truth.iter().filter(|&&t| t).count() as f64 / d.truth.len() as f64;
        assert!((frac - 0.5).abs() < 0.05, "frac = {frac}");
    }

    #[test]
    fn observation_rates_track_planted_quality() {
        let d = generate(&small());
        // For each source, the positive rate on true facts ≈ φ¹ and on
        // false facts ≈ φ⁰.
        for k in 0..10 {
            let s = SourceId::from_usize(k);
            let mut pos_true = 0usize;
            let mut n_true = 0usize;
            let mut pos_false = 0usize;
            let mut n_false = 0usize;
            for &c in d.claims.claims_of_source(s) {
                let f = d.claims.claim_fact(c);
                if d.truth[f.index()] {
                    n_true += 1;
                    pos_true += d.claims.claim_observation(c) as usize;
                } else {
                    n_false += 1;
                    pos_false += d.claims.claim_observation(c) as usize;
                }
            }
            let sens = pos_true as f64 / n_true as f64;
            let fpr = pos_false as f64 / n_false as f64;
            assert!(
                (sens - d.phi1[k]).abs() < 0.05,
                "source {k}: sens {sens} vs {}",
                d.phi1[k]
            );
            assert!(
                (fpr - d.phi0[k]).abs() < 0.05,
                "source {k}: fpr {fpr} vs {}",
                d.phi0[k]
            );
        }
    }

    #[test]
    fn sweep_constructors_set_expectations() {
        let s = SyntheticConfig::with_expected_sensitivity(0.3, 1);
        assert!((s.alpha1.0 / (s.alpha1.0 + s.alpha1.1) - 0.3).abs() < 1e-12);
        let p = SyntheticConfig::with_expected_specificity(0.7, 1);
        assert!((p.alpha0.1 / (p.alpha0.0 + p.alpha0.1) - 0.7).abs() < 1e-12);
        // Specificity sweep keeps sensitivity at 0.9 as in the paper.
        assert!((p.alpha1.0 / (p.alpha1.0 + p.alpha1.1) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn truth_assignment_is_degenerate() {
        let d = generate(&SyntheticConfig {
            num_facts: 50,
            num_sources: 3,
            ..small()
        });
        let t = d.truth_assignment();
        for (i, &label) in d.truth.iter().enumerate() {
            assert_eq!(t.prob(FactId::from_usize(i)), label as u8 as f64);
        }
    }
}
