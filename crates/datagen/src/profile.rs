//! Shared generator types: per-source behaviour profiles and the generated
//! dataset bundle.

use ltm_model::{Dataset, GroundTruth};

/// The behaviour profile a generator assigned to one source. These are the
/// *generation-time* parameters; inference never sees them, but tests use
/// them to verify that learned quality tracks planted quality.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceProfile {
    /// Source name as interned in the raw database.
    pub name: String,
    /// Probability the source lists a given true attribute of an entity it
    /// covers (its planted sensitivity).
    pub sensitivity: f64,
    /// Expected number of *wrong* attribute values the source invents per
    /// covered entity (drives its planted false-positive rate; the
    /// realised specificity also depends on how many false facts exist in
    /// total).
    pub false_positives_per_entity: f64,
    /// Fraction of entities the source covers.
    pub coverage: f64,
}

/// A generated dataset bundle: the public dataset (with the 100-entity
/// evaluation labels, as in the paper) plus the full ground truth and the
/// planted source profiles for validation.
#[derive(Debug, Clone)]
pub struct GeneratedDataset {
    /// Raw database + claim tables + evaluation labels.
    pub dataset: Dataset,
    /// Ground truth for *every* fact (generators know everything).
    pub full_truth: GroundTruth,
    /// Planted per-source behaviour, indexed by `SourceId`.
    pub profiles: Vec<SourceProfile>,
}

impl GeneratedDataset {
    /// Convenience: evaluation labels restricted view (same object the
    /// paper's protocol exposes to the evaluator).
    pub fn eval_truth(&self) -> &GroundTruth {
        &self.dataset.truth
    }
}
