//! Batch-splitting utilities for streaming experiments (paper §5.4).
//!
//! The streaming trainer consumes disjoint entity batches whose source id
//! space matches the parent dataset. These helpers cut a generated
//! dataset into such batches and resolve each batch's ground truth by
//! `(entity, attribute)` name, so examples and tests don't each reimplement
//! the bookkeeping.

use ltm_model::{ClaimDb, Dataset, GroundTruth, RawDatabaseBuilder, SourceId};
use ltm_stats::rng::rng_from_seed;
use rand::seq::SliceRandom;

use crate::profile::GeneratedDataset;

/// Splits `data` into `k` disjoint entity batches (sizes differing by at
/// most one), shuffled by `seed`. Source ids are preserved across batches.
///
/// # Panics
///
/// Panics if `k` is zero or exceeds the number of entities.
pub fn partition_entities(data: &GeneratedDataset, k: usize, seed: u64) -> Vec<Dataset> {
    let entities: Vec<_> = data.dataset.claims.entity_ids().collect();
    assert!(k > 0, "need at least one batch");
    assert!(
        k <= entities.len(),
        "cannot split {} entities into {k} batches",
        entities.len()
    );
    let mut shuffled = entities;
    let mut rng = rng_from_seed(seed);
    shuffled.shuffle(&mut rng);

    let raw = &data.dataset.raw;
    (0..k)
        .map(|b| {
            let members: std::collections::HashSet<usize> = shuffled
                .iter()
                .enumerate()
                .filter(|(i, _)| i % k == b)
                .map(|(_, e)| e.index())
                .collect();
            let mut builder = RawDatabaseBuilder::new();
            // Stable source id space (see movies::entity_sample).
            for s in 0..raw.num_sources() {
                builder.intern_source(raw.source_name(SourceId::from_usize(s)));
            }
            for row in raw.rows() {
                if members.contains(&row.entity.index()) {
                    builder.add(
                        raw.entity_name(row.entity),
                        raw.attr_name(row.attr),
                        raw.source_name(row.source),
                    );
                }
            }
            let batch_raw = builder.build();
            let claims = ClaimDb::from_raw(&batch_raw);
            let truth = resolve_truth(data, &batch_raw, &claims);
            Dataset::from_parts(
                format!("{}-batch{}", data.dataset.name, b),
                batch_raw,
                claims,
                truth,
            )
        })
        .collect()
}

/// Maps the generator's full ground truth onto a derived database whose
/// fact ids differ from the parent's, by `(entity, attribute)` name.
pub fn resolve_truth(
    data: &GeneratedDataset,
    raw: &ltm_model::RawDatabase,
    claims: &ClaimDb,
) -> GroundTruth {
    let parent_raw = &data.dataset.raw;
    let parent_claims = &data.dataset.claims;
    let mut truth = GroundTruth::new();
    for f in claims.fact_ids() {
        let fact = claims.fact(f);
        let entity_name = raw.entity_name(fact.entity);
        let attr_name = raw.attr_name(fact.attr);
        let pe = parent_raw
            .entity_id(entity_name)
            .expect("batch entity exists in parent");
        let pa = parent_raw
            .attr_id(attr_name)
            .expect("batch attribute exists in parent");
        let pf = parent_claims
            .facts_of_entity(pe)
            .iter()
            .copied()
            .find(|&x| parent_claims.fact(x).attr == pa)
            .expect("batch fact exists in parent");
        truth.insert(
            fact.entity,
            f,
            data.full_truth.label(pf).expect("parent is fully labeled"),
        );
    }
    truth
}

/// Configuration of the real-valued ingest stream generator
/// ([`real_valued_rows`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RealStreamConfig {
    /// Entities to generate.
    pub entities: usize,
    /// Facts (attributes) per entity; even-indexed attributes are true.
    pub attrs_per_entity: usize,
    /// Sources; every source scores every fact.
    pub sources: usize,
    /// Sources (prefix of the id space) that are *informative*: they
    /// score true facts near `hi` and false facts near `lo`. The rest
    /// score uniformly at random in `[lo, hi]`.
    pub informative_sources: usize,
    /// Centre of informative scores for true facts.
    pub hi: f64,
    /// Centre of informative scores for false facts.
    pub lo: f64,
    /// Gaussian noise on informative scores.
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RealStreamConfig {
    fn default() -> Self {
        Self {
            entities: 50,
            attrs_per_entity: 2,
            sources: 5,
            informative_sources: 4,
            hi: 0.9,
            lo: 0.2,
            noise: 0.06,
            seed: 17,
        }
    }
}

/// Generates a real-valued ingest stream: `(entity, attribute, source,
/// value)` rows for the `ltm-serve` real-valued-domain ingest path (and
/// its benchmarks/tests). Ground truth alternates per attribute index
/// (`a0`, `a2`, … true; `a1`, `a3`, … false), so callers can check the
/// fitted posterior against `attr index % 2 == 0` by name. Rows come in
/// entity-major order, matching an arrival stream.
pub fn real_valued_rows(config: &RealStreamConfig) -> Vec<(String, String, String, f64)> {
    use rand::Rng;
    let mut rng = rng_from_seed(config.seed);
    let mut rows = Vec::with_capacity(config.entities * config.attrs_per_entity * config.sources);
    for e in 0..config.entities {
        for a in 0..config.attrs_per_entity {
            let truth = a % 2 == 0;
            for s in 0..config.sources {
                let value = if s < config.informative_sources {
                    // Box–Muller normal around the side centre.
                    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                    let u2: f64 = rng.gen();
                    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                    let centre = if truth { config.hi } else { config.lo };
                    (centre + config.noise * z).clamp(0.0, 1.0)
                } else {
                    config.lo + (config.hi - config.lo) * rng.gen::<f64>()
                };
                rows.push((format!("e{e}"), format!("a{a}"), format!("s{s}"), value));
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::books::{self, BookConfig};

    fn data() -> GeneratedDataset {
        books::generate(&BookConfig {
            num_books: 90,
            num_sources: 50,
            mean_sources_per_book: 12.0,
            labeled_entities: 20,
            seed: 9,
        })
    }

    #[test]
    fn batches_are_disjoint_and_cover_everything() {
        let d = data();
        let batches = partition_entities(&d, 3, 1);
        assert_eq!(batches.len(), 3);
        let mut seen = std::collections::HashSet::new();
        let mut total_rows = 0;
        for b in &batches {
            for (e, _, _) in b.raw.iter_named() {
                seen.insert(e.to_string());
            }
            total_rows += b.raw.len();
        }
        assert_eq!(seen.len(), d.dataset.claims.entity_ids().count());
        assert_eq!(total_rows, d.dataset.raw.len(), "rows partitioned exactly");
    }

    #[test]
    fn batch_sizes_balanced() {
        let d = data();
        let batches = partition_entities(&d, 4, 2);
        let sizes: Vec<usize> = batches
            .iter()
            .map(|b| b.claims.entity_ids().count())
            .collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1, "sizes {sizes:?}");
    }

    #[test]
    fn source_ids_stable_across_batches() {
        let d = data();
        let batches = partition_entities(&d, 2, 3);
        for b in &batches {
            assert_eq!(b.raw.num_sources(), d.dataset.raw.num_sources());
            for s in 0..d.dataset.raw.num_sources() {
                let sid = SourceId::from_usize(s);
                assert_eq!(b.raw.source_name(sid), d.dataset.raw.source_name(sid));
            }
        }
    }

    #[test]
    fn batch_truth_matches_parent() {
        let d = data();
        let batches = partition_entities(&d, 2, 4);
        for b in &batches {
            assert_eq!(
                b.truth.num_labeled_facts(),
                b.claims.num_facts(),
                "every batch fact labeled"
            );
            // Spot-check: wrong authors false, real authors true.
            for (f, label) in b.truth.iter() {
                let attr = b.raw.attr_name(b.claims.fact(f).attr);
                assert_eq!(label, !attr.starts_with("Wrong Author"), "{attr}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one batch")]
    fn zero_batches_rejected() {
        partition_entities(&data(), 0, 0);
    }

    #[test]
    fn real_valued_rows_separate_by_truth() {
        let cfg = RealStreamConfig::default();
        let rows = real_valued_rows(&cfg);
        assert_eq!(
            rows.len(),
            cfg.entities * cfg.attrs_per_entity * cfg.sources
        );
        // Informative sources score true facts (even attrs) higher than
        // false ones on average, with a clear margin.
        let mean_of = |want_true: bool| {
            let vals: Vec<f64> = rows
                .iter()
                .filter(|(_, a, s, _)| {
                    let attr_idx: usize = a[1..].parse().unwrap();
                    let src_idx: usize = s[1..].parse().unwrap();
                    attr_idx.is_multiple_of(2) == want_true && src_idx < cfg.informative_sources
                })
                .map(|&(_, _, _, v)| v)
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        assert!(mean_of(true) > mean_of(false) + 0.4);
        // All values stay in the unit interval and are finite.
        assert!(rows.iter().all(|&(_, _, _, v)| (0.0..=1.0).contains(&v)));
        // Deterministic per seed.
        assert_eq!(real_valued_rows(&cfg), rows);
    }
}
