//! Batch-splitting utilities for streaming experiments (paper §5.4).
//!
//! The streaming trainer consumes disjoint entity batches whose source id
//! space matches the parent dataset. These helpers cut a generated
//! dataset into such batches and resolve each batch's ground truth by
//! `(entity, attribute)` name, so examples and tests don't each reimplement
//! the bookkeeping.

use ltm_model::{ClaimDb, Dataset, GroundTruth, RawDatabaseBuilder, SourceId};
use ltm_stats::rng::rng_from_seed;
use rand::seq::SliceRandom;

use crate::profile::GeneratedDataset;

/// Splits `data` into `k` disjoint entity batches (sizes differing by at
/// most one), shuffled by `seed`. Source ids are preserved across batches.
///
/// # Panics
///
/// Panics if `k` is zero or exceeds the number of entities.
pub fn partition_entities(data: &GeneratedDataset, k: usize, seed: u64) -> Vec<Dataset> {
    let entities: Vec<_> = data.dataset.claims.entity_ids().collect();
    assert!(k > 0, "need at least one batch");
    assert!(
        k <= entities.len(),
        "cannot split {} entities into {k} batches",
        entities.len()
    );
    let mut shuffled = entities;
    let mut rng = rng_from_seed(seed);
    shuffled.shuffle(&mut rng);

    let raw = &data.dataset.raw;
    (0..k)
        .map(|b| {
            let members: std::collections::HashSet<usize> = shuffled
                .iter()
                .enumerate()
                .filter(|(i, _)| i % k == b)
                .map(|(_, e)| e.index())
                .collect();
            let mut builder = RawDatabaseBuilder::new();
            // Stable source id space (see movies::entity_sample).
            for s in 0..raw.num_sources() {
                builder.intern_source(raw.source_name(SourceId::from_usize(s)));
            }
            for row in raw.rows() {
                if members.contains(&row.entity.index()) {
                    builder.add(
                        raw.entity_name(row.entity),
                        raw.attr_name(row.attr),
                        raw.source_name(row.source),
                    );
                }
            }
            let batch_raw = builder.build();
            let claims = ClaimDb::from_raw(&batch_raw);
            let truth = resolve_truth(data, &batch_raw, &claims);
            Dataset::from_parts(
                format!("{}-batch{}", data.dataset.name, b),
                batch_raw,
                claims,
                truth,
            )
        })
        .collect()
}

/// Maps the generator's full ground truth onto a derived database whose
/// fact ids differ from the parent's, by `(entity, attribute)` name.
pub fn resolve_truth(
    data: &GeneratedDataset,
    raw: &ltm_model::RawDatabase,
    claims: &ClaimDb,
) -> GroundTruth {
    let parent_raw = &data.dataset.raw;
    let parent_claims = &data.dataset.claims;
    let mut truth = GroundTruth::new();
    for f in claims.fact_ids() {
        let fact = claims.fact(f);
        let entity_name = raw.entity_name(fact.entity);
        let attr_name = raw.attr_name(fact.attr);
        let pe = parent_raw
            .entity_id(entity_name)
            .expect("batch entity exists in parent");
        let pa = parent_raw
            .attr_id(attr_name)
            .expect("batch attribute exists in parent");
        let pf = parent_claims
            .facts_of_entity(pe)
            .iter()
            .copied()
            .find(|&x| parent_claims.fact(x).attr == pa)
            .expect("batch fact exists in parent");
        truth.insert(
            fact.entity,
            f,
            data.full_truth.label(pf).expect("parent is fully labeled"),
        );
    }
    truth
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::books::{self, BookConfig};

    fn data() -> GeneratedDataset {
        books::generate(&BookConfig {
            num_books: 90,
            num_sources: 50,
            mean_sources_per_book: 12.0,
            labeled_entities: 20,
            seed: 9,
        })
    }

    #[test]
    fn batches_are_disjoint_and_cover_everything() {
        let d = data();
        let batches = partition_entities(&d, 3, 1);
        assert_eq!(batches.len(), 3);
        let mut seen = std::collections::HashSet::new();
        let mut total_rows = 0;
        for b in &batches {
            for (e, _, _) in b.raw.iter_named() {
                seen.insert(e.to_string());
            }
            total_rows += b.raw.len();
        }
        assert_eq!(seen.len(), d.dataset.claims.entity_ids().count());
        assert_eq!(total_rows, d.dataset.raw.len(), "rows partitioned exactly");
    }

    #[test]
    fn batch_sizes_balanced() {
        let d = data();
        let batches = partition_entities(&d, 4, 2);
        let sizes: Vec<usize> = batches
            .iter()
            .map(|b| b.claims.entity_ids().count())
            .collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1, "sizes {sizes:?}");
    }

    #[test]
    fn source_ids_stable_across_batches() {
        let d = data();
        let batches = partition_entities(&d, 2, 3);
        for b in &batches {
            assert_eq!(b.raw.num_sources(), d.dataset.raw.num_sources());
            for s in 0..d.dataset.raw.num_sources() {
                let sid = SourceId::from_usize(s);
                assert_eq!(b.raw.source_name(sid), d.dataset.raw.source_name(sid));
            }
        }
    }

    #[test]
    fn batch_truth_matches_parent() {
        let d = data();
        let batches = partition_entities(&d, 2, 4);
        for b in &batches {
            assert_eq!(
                b.truth.num_labeled_facts(),
                b.claims.num_facts(),
                "every batch fact labeled"
            );
            // Spot-check: wrong authors false, real authors true.
            for (f, label) in b.truth.iter() {
                let attr = b.raw.attr_name(b.claims.fact(f).attr);
                assert_eq!(label, !attr.starts_with("Wrong Author"), "{attr}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one batch")]
    fn zero_batches_rejected() {
        partition_entities(&data(), 0, 0);
    }
}
