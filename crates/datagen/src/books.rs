//! The book-author dataset stand-in (paper §6.1.1, "Book Author Dataset").
//!
//! The original data — 1263 books, 2420 book-author facts, 48,153 raw rows
//! from 879 abebooks.com sellers, 100 hand-labeled books — was never
//! released. This generator reproduces its published statistics and, more
//! importantly, its *error structure*, which is what the Latent Truth
//! Model exploits:
//!
//! * **long-tail coverage** — a few large sellers list most books, hundreds
//!   of small sellers list a handful (Zipf-weighted coverage);
//! * **first-author-only sellers** — the paper's motivating false-negative
//!   pattern ("many sources only output first authors"): half the sellers
//!   reliably list the first author and usually omit the rest, giving
//!   abundant *negative claims on true facts*;
//! * **complete sellers** — high sensitivity, near-zero false positives;
//! * **noisy sellers** — a minority that occasionally attach a *wrong*
//!   author; each book has a small pool of plausible wrong authors shared
//!   by the noisy sellers, so false facts can be corroborated and are not
//!   trivially filtered.
//!
//! Tuned so that, at the defaults, the fraction of true facts among all
//! facts is ≈ 0.88 — matching the all-true predictor's 0.880 precision in
//! the paper's Table 7.

use ltm_model::{ClaimDb, Dataset, GroundTruth, RawDatabaseBuilder};
use ltm_stats::dist::Categorical;
use ltm_stats::rng::rng_from_seed;
use rand::seq::index::sample;
use rand::Rng;

use crate::profile::{GeneratedDataset, SourceProfile};

/// Configuration for the book-author generator. Defaults target the
/// paper's dataset statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BookConfig {
    /// Number of books (paper: 1263).
    pub num_books: usize,
    /// Number of seller sources (paper: 879).
    pub num_sources: usize,
    /// Mean number of sellers covering each book (tuned so raw rows land
    /// near the paper's 48,153).
    pub mean_sources_per_book: f64,
    /// Books whose facts are labeled for evaluation (paper: 100).
    pub labeled_entities: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BookConfig {
    fn default() -> Self {
        Self {
            num_books: 1263,
            num_sources: 879,
            mean_sources_per_book: 27.0,
            labeled_entities: 100,
            seed: 2012,
        }
    }
}

/// Seller archetypes with their planted behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Archetype {
    /// Lists every author with high probability.
    Complete,
    /// Always lists the first author, rarely the others.
    FirstAuthorOnly,
    /// Lists most authors but sometimes attaches a wrong one.
    Noisy,
}

impl Archetype {
    fn sensitivity(self) -> f64 {
        match self {
            Archetype::Complete => 0.95,
            Archetype::FirstAuthorOnly => 0.12, // for non-first authors
            Archetype::Noisy => 0.75,
        }
    }

    fn false_positive_rate(self) -> f64 {
        match self {
            Archetype::Complete => 0.01,
            Archetype::FirstAuthorOnly => 0.005,
            Archetype::Noisy => 0.09,
        }
    }
}

/// Generates the simulated book-author dataset.
pub fn generate(cfg: &BookConfig) -> GeneratedDataset {
    assert!(cfg.num_books > 0 && cfg.num_sources > 0);
    assert!(
        cfg.labeled_entities <= cfg.num_books,
        "cannot label more books than exist"
    );
    let mut rng = rng_from_seed(cfg.seed);
    let mut builder = RawDatabaseBuilder::new();

    // --- Vocabulary ------------------------------------------------------
    // Author-count distribution: mostly 1–2 authors, occasionally up to 5.
    let author_count = Categorical::new(&[0.55, 0.25, 0.12, 0.05, 0.03]);
    let book_names: Vec<String> = (0..cfg.num_books).map(|b| format!("Book {b:05}")).collect();
    let entity_ids: Vec<_> = book_names
        .iter()
        .map(|n| builder.intern_entity(n))
        .collect();

    // True authors and the per-book wrong-author pool (one confusable
    // name per book, shared by noisy sellers).
    let mut true_authors: Vec<Vec<String>> = Vec::with_capacity(cfg.num_books);
    let mut wrong_author: Vec<String> = Vec::with_capacity(cfg.num_books);
    for b in 0..cfg.num_books {
        let n = author_count.sample(&mut rng) + 1;
        true_authors.push((0..n).map(|i| format!("Author {b:05}-{i}")).collect());
        wrong_author.push(format!("Wrong Author {b:05}"));
    }

    // --- Sources ----------------------------------------------------------
    // Archetype mix: 50% first-author-only, 35% complete, 15% noisy.
    let mut archetypes = Vec::with_capacity(cfg.num_sources);
    for s in 0..cfg.num_sources {
        let a = match s % 20 {
            0..=9 => Archetype::FirstAuthorOnly,
            10..=16 => Archetype::Complete,
            _ => Archetype::Noisy,
        };
        archetypes.push(a);
    }

    // Zipf coverage: source rank r gets weight (r+1)^-0.9, scaled so the
    // expected total number of (book, source) coverage slots is
    // num_books × mean_sources_per_book.
    let total_slots = (cfg.num_books as f64 * cfg.mean_sources_per_book).round();
    let weights: Vec<f64> = (1..=cfg.num_sources)
        .map(|r| (r as f64).powf(-0.9))
        .collect();
    let wsum: f64 = weights.iter().sum();
    let coverage_counts: Vec<usize> = weights
        .iter()
        .map(|w| ((w / wsum * total_slots).round() as usize).clamp(1, cfg.num_books))
        .collect();

    let source_names: Vec<String> = (0..cfg.num_sources)
        .map(|s| format!("seller-{s:04}"))
        .collect();
    let mut profiles = Vec::with_capacity(cfg.num_sources);
    for s in 0..cfg.num_sources {
        builder.intern_source(&source_names[s]);
        profiles.push(SourceProfile {
            name: source_names[s].clone(),
            sensitivity: archetypes[s].sensitivity(),
            false_positives_per_entity: archetypes[s].false_positive_rate(),
            coverage: coverage_counts[s] as f64 / cfg.num_books as f64,
        });
    }

    // --- Rows --------------------------------------------------------------
    for s in 0..cfg.num_sources {
        let covered = sample(&mut rng, cfg.num_books, coverage_counts[s]);
        let archetype = archetypes[s];
        for b in covered.iter() {
            let authors = &true_authors[b];
            match archetype {
                Archetype::Complete | Archetype::Noisy => {
                    for a in authors {
                        if rng.gen::<f64>() < archetype.sensitivity() {
                            builder.add(&book_names[b], a, &source_names[s]);
                        }
                    }
                }
                Archetype::FirstAuthorOnly => {
                    builder.add(&book_names[b], &authors[0], &source_names[s]);
                    for a in authors.iter().skip(1) {
                        if rng.gen::<f64>() < archetype.sensitivity() {
                            builder.add(&book_names[b], a, &source_names[s]);
                        }
                    }
                }
            }
            if rng.gen::<f64>() < archetype.false_positive_rate() {
                builder.add(&book_names[b], &wrong_author[b], &source_names[s]);
            }
        }
    }

    let raw = builder.build();
    let claims = ClaimDb::from_raw(&raw);

    // --- Ground truth -------------------------------------------------------
    // A fact is true iff its attribute is one of the book's true authors.
    let mut full_truth = GroundTruth::new();
    for f in claims.fact_ids() {
        let fact = claims.fact(f);
        let book_index = entity_ids
            .iter()
            .position(|&e| e == fact.entity)
            .expect("every fact entity is a generated book");
        let attr = raw.attr_name(fact.attr);
        let is_true = true_authors[book_index].iter().any(|a| a == attr);
        full_truth.insert(fact.entity, f, is_true);
    }

    // Labeled subset: the paper labels 100 random books and evaluates on
    // all their facts.
    let mut eval_truth = GroundTruth::new();
    let labeled = sample(&mut rng, cfg.num_books, cfg.labeled_entities);
    for b in labeled.iter() {
        let e = entity_ids[b];
        for &f in claims.facts_of_entity(e) {
            eval_truth.insert(e, f, full_truth.label(f).expect("fully labeled"));
        }
    }

    GeneratedDataset {
        dataset: Dataset::from_parts("book-authors", raw, claims, eval_truth),
        full_truth,
        profiles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> BookConfig {
        BookConfig {
            num_books: 200,
            num_sources: 150,
            mean_sources_per_book: 25.0,
            labeled_entities: 30,
            seed: 5,
        }
    }

    #[test]
    fn default_statistics_near_paper() {
        let d = generate(&BookConfig::default());
        let s = d.dataset.stats();
        assert_eq!(s.entities, 1263);
        assert_eq!(s.sources, 879);
        // Raw rows within 15% of 48,153.
        assert!(
            (s.raw_rows as f64 - 48_153.0).abs() / 48_153.0 < 0.15,
            "raw rows = {}",
            s.raw_rows
        );
        // Facts within 25% of 2420.
        assert!(
            (s.facts as f64 - 2_420.0).abs() / 2_420.0 < 0.25,
            "facts = {}",
            s.facts
        );
        assert_eq!(s.labeled_entities, 100);
        // All-true predictor precision ≈ 0.88 (paper Table 7's TruthFinder
        // precision row implies the labeled-true fraction).
        let frac_true = d.full_truth.num_true() as f64 / d.full_truth.num_labeled_facts() as f64;
        assert!(
            (frac_true - 0.88).abs() < 0.06,
            "true fraction = {frac_true}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&small());
        let b = generate(&small());
        assert_eq!(a.dataset.raw.len(), b.dataset.raw.len());
        assert_eq!(a.full_truth, b.full_truth);
        let c = generate(&BookConfig { seed: 6, ..small() });
        assert_ne!(a.dataset.raw.len(), c.dataset.raw.len());
    }

    #[test]
    fn every_fact_is_labeled_in_full_truth() {
        let d = generate(&small());
        assert_eq!(
            d.full_truth.num_labeled_facts(),
            d.dataset.claims.num_facts()
        );
    }

    #[test]
    fn eval_subset_is_restriction_of_full_truth() {
        let d = generate(&small());
        assert_eq!(d.eval_truth().num_labeled_entities(), 30);
        for (f, label) in d.eval_truth().iter() {
            assert_eq!(d.full_truth.label(f), Some(label));
        }
    }

    #[test]
    fn first_authors_better_covered_than_coauthors() {
        // The planted pattern: first authors collect far more positive
        // claims than later authors of the same books.
        let d = generate(&small());
        let raw = &d.dataset.raw;
        let db = &d.dataset.claims;
        let mut first = (0usize, 0usize); // (positives, facts)
        let mut later = (0usize, 0usize);
        for f in db.fact_ids() {
            let attr = raw.attr_name(db.fact(f).attr);
            if let Some(suffix) = attr.strip_prefix("Author ") {
                let pos = db.positive_count(f);
                if suffix.ends_with("-0") {
                    first.0 += pos;
                    first.1 += 1;
                } else {
                    later.0 += pos;
                    later.1 += 1;
                }
            }
        }
        let first_avg = first.0 as f64 / first.1 as f64;
        let later_avg = later.0 as f64 / later.1.max(1) as f64;
        assert!(
            first_avg > 1.5 * later_avg,
            "first {first_avg:.2} vs later {later_avg:.2}"
        );
    }

    #[test]
    fn wrong_authors_are_false_facts() {
        let d = generate(&small());
        let raw = &d.dataset.raw;
        let db = &d.dataset.claims;
        let mut wrong_facts = 0;
        for f in db.fact_ids() {
            let attr = raw.attr_name(db.fact(f).attr);
            if attr.starts_with("Wrong Author") {
                assert_eq!(d.full_truth.label(f), Some(false));
                wrong_facts += 1;
            } else {
                assert_eq!(d.full_truth.label(f), Some(true));
            }
        }
        assert!(wrong_facts > 0, "noisy sellers must introduce false facts");
    }

    #[test]
    fn long_tail_coverage() {
        let d = generate(&small());
        let db = &d.dataset.claims;
        let mut degrees: Vec<usize> = db
            .source_ids()
            .map(|s| db.claims_of_source(s).len())
            .collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        // Head sources cover far more than tail sources.
        let head: usize = degrees[..10].iter().sum();
        let tail: usize = degrees[degrees.len() - 10..].iter().sum();
        assert!(head > 10 * tail.max(1), "head {head} vs tail {tail}");
    }
}
