//! Workload generators for the `latent-truth` workspace.
//!
//! The paper evaluates on two proprietary datasets — a crawl of
//! abebooks.com book-seller listings and the Bing movies vertical's
//! director feeds — plus a synthetic stress test. The real datasets were
//! never released, so this crate builds simulators that reproduce their
//! *published statistics and error structure* (see DESIGN.md §3 for the
//! substitution argument):
//!
//! * [`synthetic`] — the paper's own generative process (§6.1): draw
//!   source quality from Beta priors, fact truth from Bernoulli(θ), claim
//!   observations from the quality of their source. Used for Figure 4.
//! * [`books`] — the book-author dataset stand-in: ~1263 books, ~879
//!   long-tail sellers, first-author-only sellers (the motivating
//!   false-negative pattern), a minority of noisy sellers introducing
//!   wrong authors, ~48k raw rows, 100 labeled books.
//! * [`movies`] — the movie-director stand-in: 12 named sources with
//!   two-sided quality profiles mirroring the paper's Table 8,
//!   conflict-only filtering, ~15k movies / ~33.5k facts / ~109k rows,
//!   100 labeled movies.
//!
//! All generators are deterministic given a seed and return both the
//! evaluation labels (the "100 labeled entities" protocol of the paper)
//! and the complete ground truth for validation.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod books;
pub mod movies;
pub mod profile;
pub mod streams;
pub mod synthetic;

pub use books::BookConfig;
pub use movies::MovieConfig;
pub use profile::{GeneratedDataset, SourceProfile};
pub use synthetic::{SyntheticConfig, SyntheticData};
