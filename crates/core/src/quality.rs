//! Two-sided source-quality estimation (paper Sections 3 and 5.3).
//!
//! After inference produces posterior truth probabilities, each source's
//! quality has a closed-form MAP estimate because the quality posterior is
//! again a Beta distribution:
//!
//! ```text
//! sensitivity(s) = (E[n_{s,1,1}] + α₁,₁) / (E[n_{s,1,0}] + E[n_{s,1,1}] + α₁,₀ + α₁,₁)
//! specificity(s) = (E[n_{s,0,0}] + α₀,₀) / (E[n_{s,0,0}] + E[n_{s,0,1}] + α₀,₀ + α₀,₁)
//! precision(s)   = (E[n_{s,1,1}] + α₁,₁) / (E[n_{s,0,1}] + E[n_{s,1,1}] + α₀,₁ + α₁,₁)
//! ```
//!
//! with the expected counts `E[n_{s,i,j}] = Σ_{c: s_c=s, o_c=j} p(t_{f_c}=i)`.

use ltm_model::{ClaimDb, SourceId, TruthAssignment};
use serde::Serialize;

use crate::counts::ExpectedCounts;
use crate::priors::{Priors, SourcePriors};

/// Smoothed two-sided quality estimates for every source.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceQuality {
    sensitivity: Vec<f64>,
    specificity: Vec<f64>,
    precision: Vec<f64>,
    accuracy: Vec<f64>,
}

/// Quality measures of a single source, in the vocabulary of the paper's
/// Table 5/6 discussion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct QualityRecord {
    /// `TP / (TP + FN)` — recall of true facts; `1 − sensitivity` is the
    /// false-negative rate.
    pub sensitivity: f64,
    /// `TN / (FP + TN)`; `1 − specificity` is the false-positive rate.
    pub specificity: f64,
    /// `TP / (TP + FP)` — reliability of positive claims.
    pub precision: f64,
    /// `(TP + TN) / (TP + FP + TN + FN)` — the scalar measure whose
    /// inadequacy Section 3.3 demonstrates; exposed for comparison.
    pub accuracy: f64,
}

impl SourceQuality {
    /// Estimates quality from posterior truth probabilities for the claims
    /// in `db` (computes the expected counts internally).
    pub fn estimate(db: &ClaimDb, truth: &TruthAssignment, priors: &Priors) -> Self {
        let expected = ExpectedCounts::from_posterior(db, truth);
        let sp = SourcePriors::uniform(*priors, db.num_sources());
        Self::from_expected_counts(&expected, &sp)
    }

    /// Estimates quality from precomputed expected counts and (possibly
    /// per-source) priors.
    pub fn from_expected_counts(expected: &ExpectedCounts, priors: &SourcePriors) -> Self {
        let n = expected.num_sources();
        let mut q = Self {
            sensitivity: Vec::with_capacity(n),
            specificity: Vec::with_capacity(n),
            precision: Vec::with_capacity(n),
            accuracy: Vec::with_capacity(n),
        };
        for i in 0..n {
            let s = SourceId::from_usize(i);
            let a0 = priors.alpha0_for(i);
            let a1 = priors.alpha1_for(i);
            let tp = expected.get(s, true, true);
            let fneg = expected.get(s, true, false);
            let fp = expected.get(s, false, true);
            let tn = expected.get(s, false, false);
            q.sensitivity
                .push((tp + a1.pos) / (tp + fneg + a1.pos + a1.neg));
            q.specificity
                .push((tn + a0.neg) / (tn + fp + a0.neg + a0.pos));
            q.precision
                .push((tp + a1.pos) / (tp + fp + a1.pos + a0.pos));
            q.accuracy.push(
                (tp + tn + a1.pos + a0.neg)
                    / (tp + tn + fp + fneg + a0.pos + a0.neg + a1.pos + a1.neg),
            );
        }
        q
    }

    /// Number of sources covered.
    pub fn num_sources(&self) -> usize {
        self.sensitivity.len()
    }

    /// Sensitivity (recall) of source `s`.
    #[inline]
    pub fn sensitivity(&self, s: SourceId) -> f64 {
        self.sensitivity[s.index()]
    }

    /// Specificity of source `s`.
    #[inline]
    pub fn specificity(&self, s: SourceId) -> f64 {
        self.specificity[s.index()]
    }

    /// False-positive rate of source `s` (`1 − specificity`, the `φ⁰`
    /// parameter of the generative model).
    #[inline]
    pub fn false_positive_rate(&self, s: SourceId) -> f64 {
        1.0 - self.specificity[s.index()]
    }

    /// Precision of source `s`.
    #[inline]
    pub fn precision(&self, s: SourceId) -> f64 {
        self.precision[s.index()]
    }

    /// Accuracy of source `s`.
    #[inline]
    pub fn accuracy(&self, s: SourceId) -> f64 {
        self.accuracy[s.index()]
    }

    /// The full record for source `s`.
    pub fn record(&self, s: SourceId) -> QualityRecord {
        QualityRecord {
            sensitivity: self.sensitivity(s),
            specificity: self.specificity(s),
            precision: self.precision(s),
            accuracy: self.accuracy(s),
        }
    }

    /// Iterates `(source, record)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SourceId, QualityRecord)> + '_ {
        (0..self.num_sources()).map(|i| {
            let s = SourceId::from_usize(i);
            (s, self.record(s))
        })
    }

    /// Source ids sorted by descending sensitivity — the presentation order
    /// of the paper's Table 8.
    pub fn by_descending_sensitivity(&self) -> Vec<SourceId> {
        let mut ids: Vec<SourceId> = (0..self.num_sources()).map(SourceId::from_usize).collect();
        ids.sort_by(|&a, &b| {
            self.sensitivity(b)
                .partial_cmp(&self.sensitivity(a))
                .expect("quality estimates are finite")
        });
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::priors::BetaPair;
    use ltm_model::RawDatabaseBuilder;

    /// Paper Tables 1/3/4: with the ground truth of Table 4 and a weak
    /// uniform prior, the estimates should approach the raw confusion-count
    /// ratios of Table 6.
    fn table1_setup() -> (ltm_model::RawDatabase, ClaimDb, TruthAssignment) {
        let mut b = RawDatabaseBuilder::new();
        b.add("Harry Potter", "Daniel Radcliffe", "IMDB");
        b.add("Harry Potter", "Emma Watson", "IMDB");
        b.add("Harry Potter", "Rupert Grint", "IMDB");
        b.add("Harry Potter", "Daniel Radcliffe", "Netflix");
        b.add("Harry Potter", "Daniel Radcliffe", "BadSource.com");
        b.add("Harry Potter", "Emma Watson", "BadSource.com");
        b.add("Harry Potter", "Johnny Depp", "BadSource.com");
        b.add("Pirates 4", "Johnny Depp", "Hulu.com");
        let raw = b.build();
        let db = ClaimDb::from_raw(&raw);
        // Table 4 ground truth: all facts true except Depp-in-HP.
        let probs: Vec<f64> = db
            .fact_ids()
            .map(|f| {
                let fact = db.fact(f);
                let is_depp_hp = raw.entity_name(fact.entity) == "Harry Potter"
                    && raw.attr_name(fact.attr) == "Johnny Depp";
                if is_depp_hp {
                    0.0
                } else {
                    1.0
                }
            })
            .collect();
        (raw, db, TruthAssignment::new(probs))
    }

    fn weak_priors() -> Priors {
        Priors {
            alpha0: BetaPair::new(1e-6, 1e-6),
            alpha1: BetaPair::new(1e-6, 1e-6),
            beta: BetaPair::new(1.0, 1.0),
        }
    }

    #[test]
    fn reproduces_table6_ratios() {
        let (raw, db, truth) = table1_setup();
        let q = SourceQuality::estimate(&db, &truth, &weak_priors());
        let sid = |n: &str| raw.source_id(n).unwrap();

        // Table 6: IMDB — precision 1, sensitivity 1, specificity 1.
        assert!((q.precision(sid("IMDB")) - 1.0).abs() < 1e-3);
        assert!((q.sensitivity(sid("IMDB")) - 1.0).abs() < 1e-3);
        assert!((q.specificity(sid("IMDB")) - 1.0).abs() < 1e-3);

        // Netflix — precision 1, sensitivity 1/3, specificity 1.
        assert!((q.precision(sid("Netflix")) - 1.0).abs() < 1e-3);
        assert!((q.sensitivity(sid("Netflix")) - 1.0 / 3.0).abs() < 1e-3);
        assert!((q.specificity(sid("Netflix")) - 1.0).abs() < 1e-3);

        // BadSource — precision 2/3, sensitivity 2/3, specificity 0.
        assert!((q.precision(sid("BadSource.com")) - 2.0 / 3.0).abs() < 1e-3);
        assert!((q.sensitivity(sid("BadSource.com")) - 2.0 / 3.0).abs() < 1e-3);
        assert!(q.specificity(sid("BadSource.com")) < 1e-3);

        // Accuracy (Table 6): Netflix 1/2 == BadSource 1/2 — the scalar
        // measure cannot tell them apart, which is the paper's point.
        assert!((q.accuracy(sid("Netflix")) - 0.5).abs() < 1e-3);
        assert!((q.accuracy(sid("BadSource.com")) - 0.5).abs() < 1e-3);
    }

    #[test]
    fn priors_smooth_towards_prior_mean() {
        let (raw, db, truth) = table1_setup();
        let strong = Priors {
            alpha0: BetaPair::new(10.0, 990.0),
            alpha1: BetaPair::new(500.0, 500.0),
            beta: BetaPair::new(1.0, 1.0),
        };
        let q = SourceQuality::estimate(&db, &truth, &strong);
        let netflix = raw.source_id("Netflix").unwrap();
        // With a sensitivity prior of mean 0.5 and strength 1000, three
        // observations barely move the estimate.
        assert!((q.sensitivity(netflix) - 0.5).abs() < 0.01);
        // Specificity prior mean 0.99 dominates BadSource's single FP.
        let bad = raw.source_id("BadSource.com").unwrap();
        assert!(q.specificity(bad) > 0.95);
    }

    #[test]
    fn fpr_is_one_minus_specificity() {
        let (_, db, truth) = table1_setup();
        let q = SourceQuality::estimate(&db, &truth, &weak_priors());
        for s in db.source_ids() {
            assert!((q.false_positive_rate(s) + q.specificity(s) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sorting_by_sensitivity_descends() {
        let (_, db, truth) = table1_setup();
        let q = SourceQuality::estimate(&db, &truth, &weak_priors());
        let order = q.by_descending_sensitivity();
        for w in order.windows(2) {
            assert!(q.sensitivity(w[0]) >= q.sensitivity(w[1]));
        }
        assert_eq!(order.len(), db.num_sources());
    }

    #[test]
    fn record_and_iter_consistent() {
        let (_, db, truth) = table1_setup();
        let q = SourceQuality::estimate(&db, &truth, &weak_priors());
        for (s, rec) in q.iter() {
            assert_eq!(rec.sensitivity, q.sensitivity(s));
            assert_eq!(rec.specificity, q.specificity(s));
            assert_eq!(rec.precision, q.precision(s));
            assert_eq!(rec.accuracy, q.accuracy(s));
        }
    }

    #[test]
    fn all_estimates_are_probabilities() {
        let (_, db, truth) = table1_setup();
        for priors in [weak_priors(), Priors::paper_books(), Priors::uniform()] {
            let q = SourceQuality::estimate(&db, &truth, &priors);
            for (_, r) in q.iter() {
                for v in [r.sensitivity, r.specificity, r.precision, r.accuracy] {
                    assert!((0.0..=1.0).contains(&v), "estimate {v} out of range");
                }
            }
        }
    }
}
