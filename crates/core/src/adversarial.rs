//! Adversarial-source filtering (paper Section 7, "Adversarial sources").
//!
//! LTM assumes sources have reasonable specificity and precision. A
//! malicious source whose data is mostly false inflates the apparent
//! specificity of benign sources (its garbage makes everyone else's
//! negatives look right) and can make benign sources' false facts harder
//! to detect. The paper's proposed remedy, implemented here, is to run LTM
//! iteratively, after each round removing sources whose inferred
//! specificity *and* precision fall below thresholds, then refitting on the
//! surviving claims.

use ltm_model::{Claim, ClaimDb, SourceId};

use crate::gibbs::{self, LtmConfig, LtmFit};

/// Thresholds below which a source is declared adversarial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdversarialFilter {
    /// A source is removed when `specificity < min_specificity` **and**
    /// `precision < min_precision` (both sides low — conservative sources
    /// with low recall are kept).
    pub min_specificity: f64,
    /// See `min_specificity`.
    pub min_precision: f64,
    /// Maximum filter-and-refit rounds.
    pub max_rounds: usize,
}

impl Default for AdversarialFilter {
    fn default() -> Self {
        Self {
            min_specificity: 0.5,
            min_precision: 0.5,
            max_rounds: 5,
        }
    }
}

/// Result of iterative adversarial filtering.
#[derive(Debug, Clone)]
pub struct FilteredFit {
    /// The fit on the final (filtered) database. Truth probabilities are
    /// indexed by the *original* fact ids — facts keep their identity even
    /// when some of their claims were removed.
    pub fit: LtmFit,
    /// Sources removed, in the order they were detected.
    pub removed: Vec<SourceId>,
    /// Rounds actually performed (≥ 1).
    pub rounds: usize,
}

/// Runs LTM, removes adversarial sources, and refits until no source is
/// flagged or `filter.max_rounds` is reached.
pub fn fit_filtered(db: &ClaimDb, config: &LtmConfig, filter: &AdversarialFilter) -> FilteredFit {
    let mut removed: Vec<SourceId> = Vec::new();
    let mut current = db.clone();
    let mut rounds = 0;
    loop {
        rounds += 1;
        let fit = gibbs::fit(&current, config);
        let mut flagged: Vec<SourceId> = Vec::new();
        for s in current.source_ids() {
            if removed.contains(&s) || current.claims_of_source(s).is_empty() {
                continue;
            }
            if fit.quality.specificity(s) < filter.min_specificity
                && fit.quality.precision(s) < filter.min_precision
            {
                flagged.push(s);
            }
        }
        if flagged.is_empty() || rounds >= filter.max_rounds {
            return FilteredFit {
                fit,
                removed,
                rounds,
            };
        }
        removed.extend(flagged.iter().copied());
        current = remove_sources(&current, &removed);
    }
}

/// Returns a view of `db` without the claims of `sources`. Facts and the
/// source id space are preserved so ids remain comparable.
pub fn remove_sources(db: &ClaimDb, sources: &[SourceId]) -> ClaimDb {
    let claims: Vec<Claim> = db
        .all_claims()
        .into_iter()
        .filter(|c| !sources.contains(&c.source))
        .collect();
    ClaimDb::from_parts(db.facts().to_vec(), claims, db.num_sources())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gibbs::SampleSchedule;
    use crate::priors::{BetaPair, Priors};
    use ltm_model::{AttrId, EntityId, Fact, FactId};

    /// 12 entities; 3 honest sources assert the true fact of each entity;
    /// one adversarial source asserts a distinct false fact per entity and
    /// none of the true ones.
    fn spiked_db() -> (ClaimDb, SourceId) {
        let n = 12u32;
        let mut facts = Vec::new();
        let mut claims = Vec::new();
        let adversary = SourceId::new(3);
        for e in 0..n {
            let true_fact = FactId::new(2 * e);
            let false_fact = FactId::new(2 * e + 1);
            facts.push(Fact {
                entity: EntityId::new(e),
                attr: AttrId::new(2 * e),
            });
            facts.push(Fact {
                entity: EntityId::new(e),
                attr: AttrId::new(2 * e + 1),
            });
            for s in 0..3 {
                claims.push(Claim {
                    fact: true_fact,
                    source: SourceId::new(s),
                    observation: true,
                });
                claims.push(Claim {
                    fact: false_fact,
                    source: SourceId::new(s),
                    observation: false,
                });
            }
            claims.push(Claim {
                fact: true_fact,
                source: adversary,
                observation: false,
            });
            claims.push(Claim {
                fact: false_fact,
                source: adversary,
                observation: true,
            });
        }
        (ClaimDb::from_parts(facts, claims, 4), adversary)
    }

    fn config() -> LtmConfig {
        // The specificity prior is deliberately weak here: the filter
        // compares the *smoothed* MAP specificity against the threshold,
        // and the adversary's 12 false positives must be able to pull the
        // estimate below 0.5 against the prior pseudo-counts.
        LtmConfig {
            priors: Priors {
                alpha0: BetaPair::new(1.0, 5.0),
                alpha1: BetaPair::new(5.0, 5.0),
                beta: BetaPair::new(5.0, 5.0),
            },
            schedule: SampleSchedule::new(300, 60, 2),
            seed: 77,
            ..Default::default()
        }
    }

    #[test]
    fn detects_and_removes_adversary() {
        let (db, adversary) = spiked_db();
        let result = fit_filtered(&db, &config(), &AdversarialFilter::default());
        assert!(
            result.removed.contains(&adversary),
            "adversary not removed; removed = {:?}",
            result.removed
        );
        assert!(result.rounds >= 2, "needs at least one refit round");
        // No honest source should be removed.
        for s in 0..3 {
            assert!(!result.removed.contains(&SourceId::new(s)));
        }
    }

    #[test]
    fn truth_improves_after_filtering() {
        let (db, _) = spiked_db();
        let plain = gibbs::fit(&db, &config());
        let filtered = fit_filtered(&db, &config(), &AdversarialFilter::default());
        // Count correctly resolved facts (even ids true, odd ids false).
        let score = |t: &ltm_model::TruthAssignment| {
            db.fact_ids()
                .filter(|f| {
                    let should_be_true = f.raw() % 2 == 0;
                    (t.prob(*f) >= 0.5) == should_be_true
                })
                .count()
        };
        assert!(
            score(&filtered.fit.truth) >= score(&plain.truth),
            "filtering must not hurt accuracy on the spiked data"
        );
    }

    #[test]
    fn clean_data_removes_nothing() {
        let (db, _) = spiked_db();
        let clean = remove_sources(&db, &[SourceId::new(3)]);
        let result = fit_filtered(&clean, &config(), &AdversarialFilter::default());
        assert!(result.removed.is_empty());
        assert_eq!(result.rounds, 1);
    }

    #[test]
    fn remove_sources_preserves_facts_and_id_space() {
        let (db, adversary) = spiked_db();
        let filtered = remove_sources(&db, &[adversary]);
        assert_eq!(filtered.num_facts(), db.num_facts());
        assert_eq!(filtered.num_sources(), db.num_sources());
        assert!(filtered.claims_of_source(adversary).is_empty());
        assert_eq!(
            filtered.num_claims(),
            db.num_claims() - db.claims_of_source(adversary).len()
        );
    }

    #[test]
    fn max_rounds_is_respected() {
        let (db, _) = spiked_db();
        let filter = AdversarialFilter {
            max_rounds: 1,
            ..Default::default()
        };
        let result = fit_filtered(&db, &config(), &filter);
        assert_eq!(result.rounds, 1);
        assert!(result.removed.is_empty(), "one round = no refit happened");
    }
}
