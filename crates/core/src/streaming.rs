//! Online / streaming truth finding (paper Section 5.4).
//!
//! When data arrives in batches, [`StreamingLtm`] fits the model on each
//! batch with per-source priors equal to the base prior *plus the expected
//! confusion counts accumulated from all previous batches*:
//! `α'ᵢ,ⱼ(s) = Σ_batches E[n_{s,i,j}] + αᵢ,ⱼ`. Quality learned early thus
//! carries forward, and each step costs only the size of the increment.
//!
//! For even cheaper updates, [`StreamingLtm::predictor`] exports the
//! current quality as an [`IncrementalLtm`] (Equation 3) that predicts new
//! facts with no sampling at all.

use std::fmt;

use ltm_model::{ClaimDb, SourceId};

use crate::counts::ExpectedCounts;
use crate::gibbs::{self, LtmConfig, LtmFit, MultiChainFit};
use crate::incremental::IncrementalLtm;
use crate::priors::{BetaPair, Priors, SourcePriors};
use crate::quality::SourceQuality;

/// A batch that cannot be folded into the accumulated streaming state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamError {
    /// The batch's source-id space is smaller than the accumulated
    /// [`ExpectedCounts`]. Source ids are positional, so a shrunken id
    /// space almost always means the batch was interned separately from
    /// the earlier batches — folding it in would attribute its claims to
    /// the wrong sources, and its expected counts could not be added to
    /// the wider accumulator anyway.
    SourceSpaceShrunk {
        /// `num_sources` of the offending batch.
        batch: usize,
        /// Sources covered by the accumulated counts so far.
        accumulated: usize,
    },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::SourceSpaceShrunk { batch, accumulated } => write!(
                f,
                "batch source-id space shrank: batch covers {batch} sources but the \
                 accumulated counts cover {accumulated} — batches must be interned in \
                 one shared id space"
            ),
        }
    }
}

impl std::error::Error for StreamError {}

/// Incremental trainer that folds learned quality into the priors of
/// subsequent batches.
///
/// # Example
///
/// ```
/// use ltm_core::{LtmConfig, SampleSchedule, StreamingLtm};
/// use ltm_model::{ClaimDb, RawDatabaseBuilder};
///
/// let config = LtmConfig {
///     schedule: SampleSchedule::new(40, 10, 1),
///     ..LtmConfig::default()
/// };
/// let mut trainer = StreamingLtm::new(config);
///
/// let mut b = RawDatabaseBuilder::new();
/// b.add("Harry Potter", "Daniel Radcliffe", "IMDB");
/// b.add("Harry Potter", "Emma Watson", "IMDB");
/// b.add("Harry Potter", "Daniel Radcliffe", "Netflix");
/// let batch = ClaimDb::from_raw(&b.build());
///
/// let fit = trainer.try_observe(&batch).expect("shared source-id space");
/// assert_eq!(fit.truth.len(), batch.num_facts());
/// assert_eq!(trainer.batches_seen(), 1);
///
/// // Quality learned so far exports as a no-sampling Equation-3
/// // predictor for new facts (the `ltm-serve` query path).
/// let predictor = trainer.predictor();
/// # let _ = predictor;
/// ```
#[derive(Debug, Clone)]
pub struct StreamingLtm {
    config: LtmConfig,
    cumulative: ExpectedCounts,
    batches_seen: usize,
}

impl StreamingLtm {
    /// Creates a trainer with the given base configuration.
    pub fn new(config: LtmConfig) -> Self {
        Self {
            config,
            cumulative: ExpectedCounts::zeros(0),
            batches_seen: 0,
        }
    }

    /// Resumes a trainer from a previously accumulated expected-count
    /// table — e.g. one restored from a serving snapshot, or carried
    /// across refit epochs by a long-lived daemon. The next batch is
    /// fitted with priors that already carry everything `counts` has
    /// seen; `batches_seen` restores the batch counter so per-batch seed
    /// decorrelation continues where the saved trainer left off.
    pub fn from_accumulated(
        config: LtmConfig,
        counts: ExpectedCounts,
        batches_seen: usize,
    ) -> Self {
        Self {
            config,
            cumulative: counts,
            batches_seen,
        }
    }

    /// Number of batches consumed so far.
    pub fn batches_seen(&self) -> usize {
        self.batches_seen
    }

    /// Replaces the base seed that per-batch chain seeds derive from.
    /// The serve-layer refit daemon bumps this on every attempt so a
    /// retried or gate-rejected refit explores with fresh chains instead
    /// of replaying the previous attempt's trajectory.
    pub fn set_seed(&mut self, seed: u64) {
        self.config.seed = seed;
    }

    /// The cumulative expected-count accumulator (the paper's
    /// `Σ_batches E[n_{s,i,j}]`) — read it out to persist a trainer and
    /// resume it later via [`StreamingLtm::from_accumulated`].
    pub fn accumulated(&self) -> &ExpectedCounts {
        &self.cumulative
    }

    /// The per-source priors the *next* batch will be fitted with.
    pub fn current_priors(&self, num_sources: usize) -> SourcePriors {
        let mut sp = SourcePriors::uniform(self.config.priors, num_sources);
        let base = self.config.priors;
        for s in 0..self.cumulative.num_sources().min(num_sources) {
            let sid = SourceId::from_usize(s);
            let fp = self.cumulative.get(sid, false, true);
            let tn = self.cumulative.get(sid, false, false);
            let tp = self.cumulative.get(sid, true, true);
            let fnn = self.cumulative.get(sid, true, false);
            sp.set(
                s,
                BetaPair::new(base.alpha0.pos + fp, base.alpha0.neg + tn),
                BetaPair::new(base.alpha1.pos + tp, base.alpha1.neg + fnn),
            );
        }
        sp
    }

    /// Fits the model on a new batch using the accumulated quality priors,
    /// then folds the batch's expected counts into the accumulator.
    ///
    /// Each batch's sources must live in the same id space (the generators
    /// and readers in this workspace guarantee that by interning source
    /// names consistently).
    ///
    /// # Panics
    ///
    /// Panics if the batch's source-id space is smaller than the
    /// accumulated counts' (see [`StreamError::SourceSpaceShrunk`]). Use
    /// [`StreamingLtm::try_observe`] to handle the drift as a typed error.
    pub fn observe(&mut self, batch: &ClaimDb) -> LtmFit {
        self.try_observe(batch).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`StreamingLtm::observe`], with id-space drift reported as a typed
    /// error instead of a panic. On error the accumulated state is left
    /// untouched.
    pub fn try_observe(&mut self, batch: &ClaimDb) -> Result<LtmFit, StreamError> {
        self.check_id_space(batch)?;
        let priors = self.current_priors(batch.num_sources());
        let fit = gibbs::fit_with_source_priors(batch, &self.batch_config(), &priors);
        self.fold(batch, &fit.expected_counts);
        Ok(fit)
    }

    /// Fits a batch with `num_chains` parallel Gibbs chains (pooled
    /// posterior + Gelman–Rubin `R̂` diagnostics) under the accumulated
    /// quality priors, then folds the pooled expected counts into the
    /// accumulator. This is the refit path of `ltm-serve`, whose epoch
    /// promotion is gated on the returned diagnostics.
    pub fn try_observe_chains(
        &mut self,
        batch: &ClaimDb,
        num_chains: usize,
    ) -> Result<MultiChainFit, StreamError> {
        self.check_id_space(batch)?;
        let priors = self.current_priors(batch.num_sources());
        let multi =
            gibbs::fit_chains_with_source_priors(batch, &self.batch_config(), &priors, num_chains);
        self.fold(batch, &multi.expected_counts);
        Ok(multi)
    }

    /// Rejects batches whose source-id space is smaller than the
    /// accumulated counts'.
    fn check_id_space(&self, batch: &ClaimDb) -> Result<(), StreamError> {
        if batch.num_sources() < self.cumulative.num_sources() {
            return Err(StreamError::SourceSpaceShrunk {
                batch: batch.num_sources(),
                accumulated: self.cumulative.num_sources(),
            });
        }
        Ok(())
    }

    /// The configuration for the next batch fit: the base configuration
    /// with the seed decorrelated across batches (reproducibly).
    fn batch_config(&self) -> LtmConfig {
        LtmConfig {
            seed: self.config.seed.wrapping_add(self.batches_seen as u64),
            ..self.config
        }
    }

    /// Folds one batch's expected counts into the accumulator.
    fn fold(&mut self, batch: &ClaimDb, counts: &ExpectedCounts) {
        self.cumulative.grow(batch.num_sources());
        self.cumulative.add_assign(counts);
        self.batches_seen += 1;
    }

    /// Source quality implied by everything seen so far (base priors plus
    /// accumulated expected counts).
    pub fn quality(&self) -> SourceQuality {
        let sp = SourcePriors::uniform(self.config.priors, self.cumulative.num_sources());
        SourceQuality::from_expected_counts(&self.cumulative, &sp)
    }

    /// Exports a closed-form Equation-3 predictor using the current
    /// cumulative quality.
    pub fn predictor(&self) -> IncrementalLtm {
        IncrementalLtm::new(&self.quality(), &self.base_priors())
    }

    /// The base (batch-independent) priors.
    pub fn base_priors(&self) -> Priors {
        self.config.priors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gibbs::SampleSchedule;
    use ltm_model::{AttrId, Claim, EntityId, Fact, FactId};

    /// Builds a batch of `n` facts, all true, where source 0 asserts all of
    /// them and source 1 asserts none (pure false negatives for source 1).
    fn batch(n: u32, start_entity: u32) -> ClaimDb {
        let facts: Vec<Fact> = (0..n)
            .map(|i| Fact {
                entity: EntityId::new(start_entity + i),
                attr: AttrId::new(i),
            })
            .collect();
        let mut claims = Vec::new();
        for i in 0..n {
            claims.push(Claim {
                fact: FactId::new(i),
                source: SourceId::new(0),
                observation: true,
            });
            claims.push(Claim {
                fact: FactId::new(i),
                source: SourceId::new(1),
                observation: false,
            });
        }
        ClaimDb::from_parts(facts, claims, 2)
    }

    fn config() -> LtmConfig {
        LtmConfig {
            priors: Priors {
                alpha0: BetaPair::new(1.0, 50.0),
                alpha1: BetaPair::new(5.0, 5.0),
                beta: BetaPair::new(5.0, 5.0),
            },
            schedule: SampleSchedule::new(200, 50, 1),
            seed: 9,
            ..Default::default()
        }
    }

    #[test]
    fn counts_accumulate_across_batches() {
        let mut s = StreamingLtm::new(config());
        assert_eq!(s.batches_seen(), 0);
        let fit1 = s.observe(&batch(6, 0));
        assert_eq!(s.batches_seen(), 1);
        let before = s.current_priors(2);
        s.observe(&batch(6, 100));
        let after = s.current_priors(2);
        // Source 0's sensitivity prior should have grown by roughly the
        // second batch's expected true-positive count.
        assert!(after.alpha1_for(0).pos > before.alpha1_for(0).pos);
        // The first fit should call the well-supported facts true.
        let true_frac = fit1.truth.probs().iter().filter(|&&p| p >= 0.5).count() as f64
            / fit1.truth.len() as f64;
        assert!(true_frac > 0.5);
    }

    #[test]
    fn quality_learns_source_one_omits() {
        let mut s = StreamingLtm::new(config());
        for b in 0..3 {
            s.observe(&batch(8, b * 100));
        }
        let q = s.quality();
        // Source 0 asserts everything (if facts are inferred true, high
        // sensitivity); source 1 asserts nothing (low sensitivity).
        assert!(
            q.sensitivity(SourceId::new(0)) > q.sensitivity(SourceId::new(1)),
            "s0 {} vs s1 {}",
            q.sensitivity(SourceId::new(0)),
            q.sensitivity(SourceId::new(1))
        );
    }

    #[test]
    fn predictor_reflects_learned_quality() {
        let mut s = StreamingLtm::new(config());
        for b in 0..3 {
            s.observe(&batch(8, b * 100));
        }
        let pred = s.predictor();
        // New batch: a single positive claim by source 0 should now carry
        // high confidence.
        let facts = vec![Fact {
            entity: EntityId::new(999),
            attr: AttrId::new(0),
        }];
        let claims = vec![Claim {
            fact: FactId::new(0),
            source: SourceId::new(0),
            observation: true,
        }];
        let db = ClaimDb::from_parts(facts, claims, 2);
        let t = pred.predict(&db);
        assert!(t.prob(FactId::new(0)) > 0.5);
    }

    /// A batch over a single source (smaller id space than `batch`'s 2).
    fn one_source_batch() -> ClaimDb {
        let facts = vec![Fact {
            entity: EntityId::new(0),
            attr: AttrId::new(0),
        }];
        let claims = vec![Claim {
            fact: FactId::new(0),
            source: SourceId::new(0),
            observation: true,
        }];
        ClaimDb::from_parts(facts, claims, 1)
    }

    #[test]
    fn shrunken_source_space_is_typed_error() {
        let mut s = StreamingLtm::new(config());
        s.observe(&batch(4, 0));
        let before = s.batches_seen();
        let err = s.try_observe(&one_source_batch()).unwrap_err();
        assert_eq!(
            err,
            StreamError::SourceSpaceShrunk {
                batch: 1,
                accumulated: 2
            }
        );
        assert!(err.to_string().contains("shrank"), "{err}");
        // The accumulated state is untouched by the rejected batch.
        assert_eq!(s.batches_seen(), before);
        let err2 = s.try_observe_chains(&one_source_batch(), 2).unwrap_err();
        assert_eq!(err, err2);
    }

    #[test]
    fn observe_panics_on_shrunken_source_space() {
        let mut s = StreamingLtm::new(config());
        s.observe(&batch(4, 0));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.observe(&one_source_batch())
        }));
        assert!(r.is_err());
    }

    #[test]
    fn growing_source_space_still_accepted() {
        let mut s = StreamingLtm::new(config());
        s.observe(&one_source_batch());
        // A wider batch grows the accumulator rather than erroring.
        s.try_observe(&batch(4, 0)).unwrap();
        assert_eq!(s.batches_seen(), 2);
        assert_eq!(s.quality().num_sources(), 2);
    }

    #[test]
    fn observe_chains_folds_counts_and_reports_diagnostics() {
        let mut chained = StreamingLtm::new(config());
        let multi = chained.try_observe_chains(&batch(8, 0), 2).unwrap();
        assert_eq!(multi.diagnostics.num_chains, 2);
        assert!(multi.diagnostics.max_rhat.is_finite());
        assert_eq!(chained.batches_seen(), 1);
        // The fold uses the pooled expected counts: totals match the batch.
        let q = chained.quality();
        assert_eq!(q.num_sources(), 2);
    }

    #[test]
    fn from_accumulated_resumes_where_the_saved_trainer_left_off() {
        // Train a reference trainer over two batches, snapshot it after
        // the first, resume, fold the second batch — every observable
        // (priors, quality, batch counter) must match the uninterrupted
        // trainer exactly, because the resumed one replays the identical
        // per-batch seeds.
        let mut reference = StreamingLtm::new(config());
        reference.observe(&batch(6, 0));
        let saved_cells = reference.accumulated().cells().to_vec();
        let saved_batches = reference.batches_seen();
        reference.observe(&batch(6, 100));

        let mut resumed = StreamingLtm::from_accumulated(
            config(),
            ExpectedCounts::from_cells(saved_cells),
            saved_batches,
        );
        assert_eq!(resumed.batches_seen(), 1);
        resumed.observe(&batch(6, 100));
        assert_eq!(resumed.batches_seen(), reference.batches_seen());
        assert_eq!(resumed.accumulated(), reference.accumulated());
        for s in [SourceId::new(0), SourceId::new(1)] {
            assert_eq!(
                resumed.quality().sensitivity(s),
                reference.quality().sensitivity(s),
                "resumed trainer must be bit-identical for source {s}"
            );
        }
    }

    #[test]
    fn streaming_matches_batch_quality_direction() {
        // Streaming over two halves should produce quality estimates
        // qualitatively equal to one batch fit over the union.
        let mut s = StreamingLtm::new(config());
        s.observe(&batch(10, 0));
        s.observe(&batch(10, 100));
        let sq = s.quality();

        let whole = batch(20, 0);
        let bf = gibbs::fit(&whole, &config());
        for src in [SourceId::new(0), SourceId::new(1)] {
            let (a, b) = (sq.sensitivity(src), bf.quality.sensitivity(src));
            assert!(
                (a - b).abs() < 0.2,
                "source {src}: streaming {a} vs batch {b}"
            );
        }
    }
}
