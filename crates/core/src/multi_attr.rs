//! Joint modeling of multiple attribute types (paper §7, "Multiple
//! attribute types").
//!
//! The base model fits each attribute type independently, but a source
//! that is meticulous about authors is often meticulous about publishers
//! too. The paper sketches the extension: give each source type-specific
//! quality generated from a *source-specific global prior*, and let the
//! types inform each other through it.
//!
//! This module implements that idea as empirical Bayes over the per-source
//! priors:
//!
//! 1. fit every attribute type independently with the base priors;
//! 2. pool each source's expected confusion counts across types and shrink
//!    them into per-source priors (`α₀,ₛ`, `α₁,ₛ`) — a count-weighted
//!    compromise between the base prior and the source's cross-type
//!    behaviour;
//! 3. refit every type with its own data but the shared per-source priors;
//! 4. repeat for a configured number of rounds (one round is usually
//!    enough; the fixed point is stable because step 2 is a contraction
//!    towards the pooled counts).
//!
//! The effect is "borrowing strength": a type with little data inherits
//! the source quality observed on data-rich types, exactly the low-volume
//! benefit the paper attributes to its Bayesian formulation.

use ltm_model::{ClaimDb, SourceId};

use crate::counts::ExpectedCounts;
use crate::gibbs::{self, LtmConfig, LtmFit};
use crate::priors::{BetaPair, SourcePriors};

/// Configuration of the joint fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiAttrConfig {
    /// Base single-type configuration (priors, schedule, seed).
    pub base: LtmConfig,
    /// Pooling rounds after the independent first pass.
    pub rounds: usize,
    /// Shrinkage weight `w ∈ [0, 1]` applied to the pooled cross-type
    /// counts when forming each type's per-source prior (0 = independent
    /// fits, 1 = full pooling).
    pub shrinkage: f64,
}

impl Default for MultiAttrConfig {
    fn default() -> Self {
        Self {
            base: LtmConfig::default(),
            rounds: 1,
            shrinkage: 0.5,
        }
    }
}

/// Fits several attribute types jointly. `types` are the per-type claim
/// databases; they must share the source id space (the same
/// `SourceId` refers to the same real-world source in every database).
///
/// Returns one fit per type, parallel to the input.
pub fn fit_joint(types: &[&ClaimDb], config: &MultiAttrConfig) -> Vec<LtmFit> {
    assert!(!types.is_empty(), "need at least one attribute type");
    assert!(
        (0.0..=1.0).contains(&config.shrinkage),
        "shrinkage must lie in [0, 1]"
    );
    let num_sources = types.iter().map(|db| db.num_sources()).max().unwrap_or(0);

    // Round 0: independent fits.
    let mut fits: Vec<LtmFit> = types
        .iter()
        .enumerate()
        .map(|(i, db)| {
            let cfg = LtmConfig {
                seed: config.base.seed.wrapping_add(i as u64),
                ..config.base
            };
            gibbs::fit(db, &cfg)
        })
        .collect();

    for round in 0..config.rounds {
        // Pool expected counts across types.
        let mut pooled = ExpectedCounts::zeros(num_sources);
        for fit in &fits {
            let mut grown = fit.expected_counts.clone();
            grown.grow(num_sources);
            pooled.add_assign(&grown);
        }

        // Per-source priors: base prior + shrinkage × pooled counts.
        let mut priors = SourcePriors::uniform(config.base.priors, num_sources);
        let w = config.shrinkage;
        for s in 0..num_sources {
            let sid = SourceId::from_usize(s);
            let fp = pooled.get(sid, false, true);
            let tn = pooled.get(sid, false, false);
            let tp = pooled.get(sid, true, true);
            let fneg = pooled.get(sid, true, false);
            priors.set(
                s,
                BetaPair::new(
                    config.base.priors.alpha0.pos + w * fp,
                    config.base.priors.alpha0.neg + w * tn,
                ),
                BetaPair::new(
                    config.base.priors.alpha1.pos + w * tp,
                    config.base.priors.alpha1.neg + w * fneg,
                ),
            );
        }

        // Refit every type under the shared priors.
        fits = types
            .iter()
            .enumerate()
            .map(|(i, db)| {
                let cfg = LtmConfig {
                    seed: config
                        .base
                        .seed
                        .wrapping_add(1000 * (round as u64 + 1) + i as u64),
                    ..config.base
                };
                gibbs::fit_with_source_priors(db, &cfg, &priors)
            })
            .collect();
    }
    fits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gibbs::SampleSchedule;
    use crate::priors::Priors;
    use ltm_model::{AttrId, Claim, EntityId, Fact, FactId};

    /// Builds one attribute type: `n` entities, each with one true fact
    /// that source 0 asserts and one false fact that source 1 asserts;
    /// sources 2..4 vote with the truth.
    fn attr_type(n: u32, entity_base: u32) -> ClaimDb {
        let mut facts = Vec::new();
        let mut claims = Vec::new();
        for e in 0..n {
            let tf = FactId::new(2 * e);
            let ff = FactId::new(2 * e + 1);
            facts.push(Fact {
                entity: EntityId::new(entity_base + e),
                attr: AttrId::new(2 * e),
            });
            facts.push(Fact {
                entity: EntityId::new(entity_base + e),
                attr: AttrId::new(2 * e + 1),
            });
            for s in 0..4u32 {
                // Source 1 is the liar: asserts the false fact, denies the
                // true one; everyone else does the opposite.
                let (pos_t, pos_f) = if s == 1 { (false, true) } else { (true, false) };
                claims.push(Claim {
                    fact: tf,
                    source: SourceId::new(s),
                    observation: pos_t,
                });
                claims.push(Claim {
                    fact: ff,
                    source: SourceId::new(s),
                    observation: pos_f,
                });
            }
        }
        ClaimDb::from_parts(facts, claims, 4)
    }

    fn config() -> MultiAttrConfig {
        MultiAttrConfig {
            base: LtmConfig {
                priors: Priors {
                    alpha0: BetaPair::new(1.0, 20.0),
                    alpha1: BetaPair::new(5.0, 5.0),
                    beta: BetaPair::new(5.0, 5.0),
                },
                schedule: SampleSchedule::new(150, 30, 1),
                seed: 3,
                arithmetic: Default::default(),
            },
            rounds: 1,
            shrinkage: 0.5,
        }
    }

    #[test]
    fn joint_fit_returns_one_fit_per_type() {
        let a = attr_type(10, 0);
        let b = attr_type(10, 100);
        let fits = fit_joint(&[&a, &b], &config());
        assert_eq!(fits.len(), 2);
        assert_eq!(fits[0].truth.len(), a.num_facts());
        assert_eq!(fits[1].truth.len(), b.num_facts());
    }

    #[test]
    fn small_type_borrows_strength_from_large_type() {
        // Type A has plenty of data; type B is tiny (2 entities). With
        // independent fits, B can barely estimate source 1's
        // untrustworthiness; jointly, the pooled counts import it.
        let a = attr_type(40, 0);
        let b = attr_type(2, 1000);

        let cfg = config();
        let independent = fit_joint(&[&b], &cfg); // no pooling partner
        let joint = fit_joint(&[&a, &b], &cfg);

        // Count correct decisions on B (even fact ids true, odd false).
        let score = |fit: &LtmFit, db: &ClaimDb| {
            db.fact_ids()
                .filter(|f| (fit.truth.prob(*f) >= 0.5) == (f.raw() % 2 == 0))
                .count()
        };
        let alone = score(&independent[0], &b);
        let with_pool = score(&joint[1], &b);
        assert!(
            with_pool >= alone,
            "joint fit ({with_pool}) must not be worse than independent ({alone})"
        );
        // And the joint fit should resolve B perfectly.
        assert_eq!(with_pool, b.num_facts());
    }

    #[test]
    fn zero_shrinkage_matches_independent_quality_direction() {
        let a = attr_type(10, 0);
        let cfg = MultiAttrConfig {
            shrinkage: 0.0,
            ..config()
        };
        let fits = fit_joint(&[&a], &cfg);
        // Source 1 (the liar) must have the lowest sensitivity.
        let q = &fits[0].quality;
        for s in [0u32, 2, 3] {
            assert!(q.sensitivity(SourceId::new(1)) < q.sensitivity(SourceId::new(s)));
        }
    }

    #[test]
    #[should_panic(expected = "at least one attribute type")]
    fn empty_types_rejected() {
        fit_joint(&[], &config());
    }

    #[test]
    #[should_panic(expected = "shrinkage")]
    fn invalid_shrinkage_rejected() {
        let a = attr_type(2, 0);
        let cfg = MultiAttrConfig {
            shrinkage: 1.5,
            ..config()
        };
        fit_joint(&[&a], &cfg);
    }
}
