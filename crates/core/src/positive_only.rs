//! **LTMpos** — the truncated ablation that discards negative claims
//! (paper Section 6.2).
//!
//! The paper uses LTMpos to demonstrate that negative claims are what lets
//! LTM recognise erroneous data when multiple facts can be true: with only
//! positive claims every fact looks asserted-by-someone and the model
//! drifts to predicting everything true (its Table 7 row shows a 1.0
//! false-positive rate on both datasets).

use ltm_model::{Claim, ClaimDb};

use crate::gibbs::{self, LtmConfig, LtmFit};

/// Returns a copy of `db` with every negative claim removed. Facts,
/// entities and the source id space are preserved.
pub fn positive_only_view(db: &ClaimDb) -> ClaimDb {
    let claims: Vec<Claim> = db
        .all_claims()
        .into_iter()
        .filter(|c| c.observation)
        .collect();
    ClaimDb::from_parts(db.facts().to_vec(), claims, db.num_sources())
}

/// Fits LTM on the positive-claims-only view of `db`.
pub fn fit(db: &ClaimDb, config: &LtmConfig) -> LtmFit {
    let view = positive_only_view(db);
    gibbs::fit(&view, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gibbs::SampleSchedule;
    use crate::priors::{BetaPair, Priors};
    use ltm_model::RawDatabaseBuilder;

    fn table1_db() -> ClaimDb {
        let mut b = RawDatabaseBuilder::new();
        b.add("Harry Potter", "Daniel Radcliffe", "IMDB");
        b.add("Harry Potter", "Emma Watson", "IMDB");
        b.add("Harry Potter", "Rupert Grint", "IMDB");
        b.add("Harry Potter", "Daniel Radcliffe", "Netflix");
        b.add("Harry Potter", "Daniel Radcliffe", "BadSource.com");
        b.add("Harry Potter", "Emma Watson", "BadSource.com");
        b.add("Harry Potter", "Johnny Depp", "BadSource.com");
        b.add("Pirates 4", "Johnny Depp", "Hulu.com");
        ClaimDb::from_raw(&b.build())
    }

    #[test]
    fn view_keeps_only_positive_claims() {
        let db = table1_db();
        let view = positive_only_view(&db);
        assert_eq!(view.num_facts(), db.num_facts());
        assert_eq!(view.num_claims(), db.num_positive_claims());
        assert_eq!(view.num_negative_claims(), 0);
        assert_eq!(view.num_sources(), db.num_sources());
    }

    #[test]
    fn view_preserves_entity_structure() {
        let db = table1_db();
        let view = positive_only_view(&db);
        for e in db.entity_ids() {
            assert_eq!(db.facts_of_entity(e), view.facts_of_entity(e));
        }
    }

    #[test]
    fn ltmpos_is_overly_optimistic() {
        // Without negative claims every fact has only positive evidence, so
        // all posteriors should be high — including the false Depp-in-HP
        // fact. This reproduces the paper's qualitative LTMpos finding.
        let db = table1_db();
        let cfg = LtmConfig {
            priors: Priors {
                alpha0: BetaPair::new(1.0, 10.0),
                alpha1: BetaPair::new(5.0, 5.0),
                beta: BetaPair::new(2.0, 2.0),
            },
            schedule: SampleSchedule::new(300, 60, 2),
            seed: 11,
            arithmetic: Default::default(),
        };
        let pos_fit = fit(&db, &cfg);
        for f in db.fact_ids() {
            assert!(
                pos_fit.truth.prob(f) >= 0.5,
                "LTMpos should call fact {f} true, got {}",
                pos_fit.truth.prob(f)
            );
        }
    }

    #[test]
    fn idempotent_on_positive_only_database() {
        let db = table1_db();
        let once = positive_only_view(&db);
        let twice = positive_only_view(&once);
        assert_eq!(once.num_claims(), twice.num_claims());
        assert_eq!(once.all_claims(), twice.all_claims());
    }
}
