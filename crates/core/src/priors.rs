//! Prior hyperparameters of the Latent Truth Model (paper Section 4.3).
//!
//! Three Beta priors drive the model:
//!
//! * `α₀ = (α₀,₁, α₀,₀)` — prior false-positive / true-negative counts; the
//!   false-positive rate of each source is `φ⁰ₖ ~ Beta(α₀,₁, α₀,₀)`. The
//!   paper stresses that `α₀,₀` must be set *significantly* higher than
//!   `α₀,₁` (sources rarely fabricate data) — "otherwise the model could
//!   flip every truth while still achieving high likelihood".
//! * `α₁ = (α₁,₁, α₁,₀)` — prior true-positive / false-negative counts;
//!   sensitivity is `φ¹ₖ ~ Beta(α₁,₁, α₁,₀)`. Missing data is common, so a
//!   weak (uniform-ish) prior is appropriate.
//! * `β = (β₁, β₀)` — prior true / false counts per fact;
//!   `θ_f ~ Beta(β₁, β₀)`.
//!
//! To be effective the specificity prior counts must be on the same scale
//! as the number of facts (paper §6.2: `(10, 1000)` for the 2.4k-fact book
//! data, `(100, 10000)` for the 33.5k-fact movie data);
//! [`Priors::scaled_specificity`] encodes that rule.

use serde::{Deserialize, Serialize};

/// A Beta prior expressed as a pair of pseudo-counts `(positive, negative)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BetaPair {
    /// Pseudo-count of the "1" outcome.
    pub pos: f64,
    /// Pseudo-count of the "0" outcome.
    pub neg: f64,
}

impl BetaPair {
    /// Creates a Beta pseudo-count pair.
    ///
    /// # Panics
    ///
    /// Panics unless both counts are strictly positive and finite.
    pub fn new(pos: f64, neg: f64) -> Self {
        assert!(
            pos > 0.0 && pos.is_finite() && neg > 0.0 && neg.is_finite(),
            "BetaPair: counts must be positive and finite, got ({pos}, {neg})"
        );
        Self { pos, neg }
    }

    /// Mean of the Beta distribution, `pos / (pos + neg)`.
    pub fn mean(&self) -> f64 {
        self.pos / (self.pos + self.neg)
    }

    /// Total pseudo-count (prior strength).
    pub fn strength(&self) -> f64 {
        self.pos + self.neg
    }

    /// The pseudo-count for outcome `o` (`true` → `pos`).
    #[inline]
    pub fn count(&self, o: bool) -> f64 {
        if o {
            self.pos
        } else {
            self.neg
        }
    }
}

/// The full prior configuration of the model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Priors {
    /// `α₀ = (prior false-positive count, prior true-negative count)` —
    /// governs the false-positive rate `φ⁰`; `1 − mean` is the prior
    /// expected specificity.
    pub alpha0: BetaPair,
    /// `α₁ = (prior true-positive count, prior false-negative count)` —
    /// governs sensitivity `φ¹`.
    pub alpha1: BetaPair,
    /// `β = (prior true count, prior false count)` per fact.
    pub beta: BetaPair,
}

impl Priors {
    /// Creates a prior configuration.
    pub fn new(alpha0: BetaPair, alpha1: BetaPair, beta: BetaPair) -> Self {
        Self {
            alpha0,
            alpha1,
            beta,
        }
    }

    /// The paper's setting for the book-author dataset:
    /// `α₀ = (10, 1000)`, `α₁ = (50, 50)`, `β = (10, 10)`.
    pub fn paper_books() -> Self {
        Self {
            alpha0: BetaPair::new(10.0, 1000.0),
            alpha1: BetaPair::new(50.0, 50.0),
            beta: BetaPair::new(10.0, 10.0),
        }
    }

    /// The paper's setting for the movie-director dataset:
    /// `α₀ = (100, 10000)`, `α₁ = (50, 50)`, `β = (10, 10)`.
    pub fn paper_movies() -> Self {
        Self {
            alpha0: BetaPair::new(100.0, 10000.0),
            alpha1: BetaPair::new(50.0, 50.0),
            beta: BetaPair::new(10.0, 10.0),
        }
    }

    /// Scales the specificity prior to the dataset size following the
    /// paper's rule of thumb: prior expected specificity 0.99, with prior
    /// strength on the order of the number of facts (so the prior is not
    /// washed out by the data).
    pub fn scaled_specificity(num_facts: usize) -> Self {
        let neg = (num_facts as f64 / 3.0).max(100.0);
        Self {
            alpha0: BetaPair::new(neg / 100.0, neg),
            alpha1: BetaPair::new(50.0, 50.0),
            beta: BetaPair::new(10.0, 10.0),
        }
    }

    /// Fully uniform priors — every Beta is `Beta(1, 1)`. Useful for
    /// studying why the strong specificity prior matters (ablation A2 in
    /// DESIGN.md).
    pub fn uniform() -> Self {
        Self {
            alpha0: BetaPair::new(1.0, 1.0),
            alpha1: BetaPair::new(1.0, 1.0),
            beta: BetaPair::new(1.0, 1.0),
        }
    }
}

impl Default for Priors {
    /// Defaults to the book-data setting, suitable for datasets with a few
    /// thousand facts. Use [`Priors::scaled_specificity`] to adapt to the
    /// dataset size.
    fn default() -> Self {
        Self::paper_books()
    }
}

/// Per-source prior overrides, used by incremental / streaming training
/// (paper §5.4): after a batch, each source's expected confusion counts are
/// folded into its prior for the next batch, `α'ᵢ,ⱼ = E[n_{s,i,j}] + αᵢ,ⱼ`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourcePriors {
    /// Global (fallback) priors for sources without an override.
    pub base: Priors,
    /// Per-source `α₀` overrides, indexed by `SourceId`.
    pub alpha0: Vec<Option<BetaPair>>,
    /// Per-source `α₁` overrides, indexed by `SourceId`.
    pub alpha1: Vec<Option<BetaPair>>,
}

impl SourcePriors {
    /// Uniform per-source priors equal to `base` everywhere.
    pub fn uniform(base: Priors, num_sources: usize) -> Self {
        Self {
            base,
            alpha0: vec![None; num_sources],
            alpha1: vec![None; num_sources],
        }
    }

    /// The effective `α₀` for source `s`.
    #[inline]
    pub fn alpha0_for(&self, s: usize) -> BetaPair {
        self.alpha0
            .get(s)
            .copied()
            .flatten()
            .unwrap_or(self.base.alpha0)
    }

    /// The effective `α₁` for source `s`.
    #[inline]
    pub fn alpha1_for(&self, s: usize) -> BetaPair {
        self.alpha1
            .get(s)
            .copied()
            .flatten()
            .unwrap_or(self.base.alpha1)
    }

    /// Sets both overrides for source `s`, growing the tables if needed.
    pub fn set(&mut self, s: usize, alpha0: BetaPair, alpha1: BetaPair) {
        if s >= self.alpha0.len() {
            self.alpha0.resize(s + 1, None);
            self.alpha1.resize(s + 1, None);
        }
        self.alpha0[s] = Some(alpha0);
        self.alpha1[s] = Some(alpha1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beta_pair_mean_and_strength() {
        let p = BetaPair::new(10.0, 90.0);
        assert!((p.mean() - 0.1).abs() < 1e-12);
        assert_eq!(p.strength(), 100.0);
        assert_eq!(p.count(true), 10.0);
        assert_eq!(p.count(false), 90.0);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn beta_pair_rejects_zero() {
        BetaPair::new(0.0, 1.0);
    }

    #[test]
    fn paper_settings() {
        let b = Priors::paper_books();
        assert_eq!(b.alpha0.pos, 10.0);
        assert_eq!(b.alpha0.neg, 1000.0);
        let m = Priors::paper_movies();
        assert_eq!(m.alpha0.neg, 10000.0);
        // Both encode ~0.99 prior specificity.
        assert!((1.0 - b.alpha0.mean() - 0.990).abs() < 0.001);
        assert!((1.0 - m.alpha0.mean() - 0.990).abs() < 0.001);
    }

    #[test]
    fn scaled_specificity_tracks_fact_count() {
        let small = Priors::scaled_specificity(100);
        assert_eq!(small.alpha0.neg, 100.0); // floor
        let books = Priors::scaled_specificity(2420);
        assert!((books.alpha0.neg - 2420.0 / 3.0).abs() < 1e-9);
        let movies = Priors::scaled_specificity(33526);
        // Prior strength within a factor ~2 of the paper's hand-picked
        // (100, 10000).
        assert!(movies.alpha0.neg > 5000.0 && movies.alpha0.neg < 20000.0);
        // Specificity prior mean stays at 0.99 regardless of scale.
        assert!((1.0 - movies.alpha0.mean() - 0.990).abs() < 0.001);
    }

    #[test]
    fn source_priors_override_and_fallback() {
        let mut sp = SourcePriors::uniform(Priors::default(), 2);
        assert_eq!(sp.alpha0_for(0), Priors::default().alpha0);
        sp.set(3, BetaPair::new(1.0, 2.0), BetaPair::new(3.0, 4.0));
        assert_eq!(sp.alpha0_for(3), BetaPair::new(1.0, 2.0));
        assert_eq!(sp.alpha1_for(3), BetaPair::new(3.0, 4.0));
        // Fallback past the table and for non-overridden entries.
        assert_eq!(sp.alpha1_for(1), Priors::default().alpha1);
        assert_eq!(sp.alpha0_for(99), Priors::default().alpha0);
    }
}
