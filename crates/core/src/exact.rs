//! Exact posterior inference by enumeration — the test oracle for the
//! Gibbs sampler.
//!
//! With the quality parameters and fact priors integrated out (the same
//! conjugacy the collapsed sampler exploits), the joint probability of a
//! complete truth assignment `t ∈ {0,1}^F` and the observed claims is,
//! up to a constant factor (paper Appendix A):
//!
//! ```text
//! p(o, t) ∝ Π_f β_{t_f} · Π_s Π_{i∈{0,1}}
//!     B(n_{s,i,1} + α_{i,1}, n_{s,i,0} + α_{i,0}) / B(α_{i,1}, α_{i,0})
//! ```
//!
//! where `n_{s,i,j}` are the confusion counts of the full assignment.
//! Enumerating all `2^F` assignments gives the exact marginals
//! `p(t_f = 1 | o)`, feasible for `F ≤ ~20`. The workspace uses this to
//! validate that the sampler converges to the true posterior on small
//! instances (DESIGN.md §7).

use ltm_model::{ClaimDb, TruthAssignment};
use ltm_stats::special::ln_beta;

use crate::counts::GibbsCounts;
use crate::priors::Priors;

/// Maximum number of facts accepted by [`posterior`]; beyond this the
/// `2^F` enumeration is unreasonable.
pub const MAX_EXACT_FACTS: usize = 20;

/// Computes the exact posterior marginals `p(t_f = 1 | o)` by enumeration.
///
/// # Panics
///
/// Panics if `db` has more than [`MAX_EXACT_FACTS`] facts.
pub fn posterior(db: &ClaimDb, priors: &Priors) -> TruthAssignment {
    let f = db.num_facts();
    assert!(
        f <= MAX_EXACT_FACTS,
        "exact inference limited to {MAX_EXACT_FACTS} facts, got {f}"
    );
    if f == 0 {
        return TruthAssignment::new(vec![]);
    }

    let ln_b0 = ln_beta(priors.alpha0.pos, priors.alpha0.neg);
    let ln_b1 = ln_beta(priors.alpha1.pos, priors.alpha1.neg);

    // log-sum-exp accumulators: total evidence and per-fact "true" slices.
    let mut max_seen = f64::NEG_INFINITY;
    let mut joints: Vec<(u64, f64)> = Vec::with_capacity(1usize << f);

    let mut labels = vec![false; f];
    for mask in 0u64..(1u64 << f) {
        for (i, l) in labels.iter_mut().enumerate() {
            *l = (mask >> i) & 1 == 1;
        }
        let counts = GibbsCounts::from_labels(db, &labels);
        let mut ln_joint = 0.0;
        for &l in &labels {
            ln_joint += priors.beta.count(l).ln();
        }
        for s in db.source_ids() {
            // i = 0 (fact false): α₀ over (FP, TN) observations.
            let fp = counts.get(s, false, true) as f64;
            let tn = counts.get(s, false, false) as f64;
            ln_joint += ln_beta(fp + priors.alpha0.pos, tn + priors.alpha0.neg) - ln_b0;
            // i = 1 (fact true): α₁ over (TP, FN).
            let tp = counts.get(s, true, true) as f64;
            let fnn = counts.get(s, true, false) as f64;
            ln_joint += ln_beta(tp + priors.alpha1.pos, fnn + priors.alpha1.neg) - ln_b1;
        }
        max_seen = max_seen.max(ln_joint);
        joints.push((mask, ln_joint));
    }

    // Normalise in a numerically safe way relative to the max exponent.
    let mut total = 0.0;
    let mut per_fact_true = vec![0.0; f];
    for &(mask, ln_joint) in &joints {
        let w = (ln_joint - max_seen).exp();
        total += w;
        for (i, p) in per_fact_true.iter_mut().enumerate() {
            if (mask >> i) & 1 == 1 {
                *p += w;
            }
        }
    }
    TruthAssignment::new(per_fact_true.into_iter().map(|p| p / total).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gibbs::{self, Arithmetic, LtmConfig, SampleSchedule};
    use crate::priors::BetaPair;
    use ltm_model::{AttrId, Claim, EntityId, Fact, FactId, SourceId};

    fn priors() -> Priors {
        Priors {
            alpha0: BetaPair::new(1.0, 9.0),
            alpha1: BetaPair::new(4.0, 2.0),
            beta: BetaPair::new(2.0, 2.0),
        }
    }

    /// One fact, one source, one positive claim — the posterior has a
    /// closed form we can verify by hand.
    #[test]
    fn single_fact_single_claim_closed_form() {
        let facts = vec![Fact {
            entity: EntityId::new(0),
            attr: AttrId::new(0),
        }];
        let claims = vec![Claim {
            fact: FactId::new(0),
            source: SourceId::new(0),
            observation: true,
        }];
        let db = ClaimDb::from_parts(facts, claims, 1);
        let p = priors();
        // p(t=1) ∝ β₁ · E[φ¹] = β₁ · α₁₁/(α₁₁+α₁₀)
        // p(t=0) ∝ β₀ · E[φ⁰] = β₀ · α₀₁/(α₀₁+α₀₀)
        let w1 = p.beta.pos * p.alpha1.pos / p.alpha1.strength();
        let w0 = p.beta.neg * p.alpha0.pos / p.alpha0.strength();
        let expected = w1 / (w0 + w1);
        let post = posterior(&db, &p);
        assert!(
            (post.prob(FactId::new(0)) - expected).abs() < 1e-12,
            "got {}, expected {expected}",
            post.prob(FactId::new(0))
        );
    }

    #[test]
    fn empty_database() {
        let db = ClaimDb::from_parts(vec![], vec![], 0);
        assert!(posterior(&db, &priors()).is_empty());
    }

    #[test]
    fn fact_with_no_claims_gets_beta_prior() {
        let facts = vec![Fact {
            entity: EntityId::new(0),
            attr: AttrId::new(0),
        }];
        let db = ClaimDb::from_parts(facts, vec![], 1);
        let post = posterior(&db, &priors());
        // β = (2, 2) → p = 0.5.
        assert!((post.prob(FactId::new(0)) - 0.5).abs() < 1e-12);
    }

    /// A 5-fact, 3-source instance with conflicts; the Gibbs sampler run
    /// long must agree with enumeration. This is the core correctness test
    /// of the whole reproduction.
    fn small_conflict_db() -> ClaimDb {
        let facts: Vec<Fact> = (0..5)
            .map(|i| Fact {
                entity: EntityId::new(i / 2),
                attr: AttrId::new(i),
            })
            .collect();
        let mut claims = Vec::new();
        let pattern: [(u32, u32, bool); 11] = [
            (0, 0, true),
            (0, 1, true),
            (0, 2, false),
            (1, 0, true),
            (1, 1, false),
            (2, 0, false),
            (2, 1, true),
            (2, 2, true),
            (3, 2, true),
            (4, 0, true),
            (4, 2, false),
        ];
        for (f, s, o) in pattern {
            claims.push(Claim {
                fact: FactId::new(f),
                source: SourceId::new(s),
                observation: o,
            });
        }
        ClaimDb::from_parts(facts, claims, 3)
    }

    #[test]
    fn gibbs_converges_to_exact_posterior() {
        let db = small_conflict_db();
        let p = priors();
        let exact = posterior(&db, &p);
        let cfg = LtmConfig {
            priors: p,
            schedule: SampleSchedule::new(60_000, 5_000, 0),
            seed: 123,
            arithmetic: Arithmetic::LogSpace,
        };
        let fit = gibbs::fit(&db, &cfg);
        for f in db.fact_ids() {
            assert!(
                (fit.truth.prob(f) - exact.prob(f)).abs() < 0.02,
                "fact {f}: gibbs {} vs exact {}",
                fit.truth.prob(f),
                exact.prob(f)
            );
        }
    }

    #[test]
    fn direct_arithmetic_also_converges() {
        let db = small_conflict_db();
        let p = priors();
        let exact = posterior(&db, &p);
        let cfg = LtmConfig {
            priors: p,
            schedule: SampleSchedule::new(60_000, 5_000, 0),
            seed: 321,
            arithmetic: Arithmetic::Direct,
        };
        let fit = gibbs::fit(&db, &cfg);
        for f in db.fact_ids() {
            assert!(
                (fit.truth.prob(f) - exact.prob(f)).abs() < 0.02,
                "fact {f}: gibbs {} vs exact {}",
                fit.truth.prob(f),
                exact.prob(f)
            );
        }
    }

    #[test]
    #[should_panic(expected = "exact inference limited")]
    fn rejects_oversized_instance() {
        let facts: Vec<Fact> = (0..21)
            .map(|i| Fact {
                entity: EntityId::new(i),
                attr: AttrId::new(i),
            })
            .collect();
        let db = ClaimDb::from_parts(facts, vec![], 1);
        let _ = posterior(&db, &priors());
    }

    #[test]
    fn marginals_sum_consistency() {
        // The exact marginals must lie strictly inside (0,1) for facts with
        // conflicting evidence.
        let db = small_conflict_db();
        let post = posterior(&db, &priors());
        for f in db.fact_ids() {
            let p = post.prob(f);
            assert!(p > 0.0 && p < 1.0, "fact {f}: degenerate marginal {p}");
        }
    }
}
