//! The **Latent Truth Model** (LTM) — a Bayesian approach to discovering
//! truth from conflicting sources (Zhao, Rubinstein, Gemmell, Han;
//! VLDB 2012).
//!
//! Given a claim database ([`ltm_model::ClaimDb`]) derived from raw
//! `(entity, attribute, source)` triples, LTM jointly infers
//!
//! * the posterior probability that each fact is true, and
//! * **two-sided quality** for every source — sensitivity (how rarely it
//!   omits true facts) and specificity (how rarely it asserts false ones) —
//!
//! with no supervision, by collapsed Gibbs sampling over the latent truth
//! labels. Modeling the two error types separately is what lets the model
//! support multiple true values per entity (e.g. several authors per
//! book), the paper's headline contribution.
//!
//! # Quick start
//!
//! ```
//! use ltm_model::RawDatabaseBuilder;
//! use ltm_core::{fit, LtmConfig};
//!
//! let mut b = RawDatabaseBuilder::new();
//! b.add("Harry Potter", "Daniel Radcliffe", "IMDB");
//! b.add("Harry Potter", "Emma Watson", "IMDB");
//! b.add("Harry Potter", "Daniel Radcliffe", "Netflix");
//! let raw = b.build();
//! let db = ltm_model::ClaimDb::from_raw(&raw);
//!
//! let result = fit(&db, &LtmConfig::scaled_for(db.num_facts()));
//! for f in db.fact_ids() {
//!     println!("p(true) = {:.3}", result.truth.prob(f));
//! }
//! ```
//!
//! # Module map
//!
//! | Module | Paper section | Contents |
//! |---|---|---|
//! | [`priors`] | §4.3 | `Beta` hyperparameters `α₀`, `α₁`, `β`; per-source priors |
//! | [`counts`] | §5.2 | per-source confusion counts (integer + expected) |
//! | [`gibbs`]  | §5.2 | collapsed Gibbs sampler (Algorithm 1) |
//! | [`quality`] | §3, §5.3 | sensitivity / specificity / precision estimation |
//! | [`incremental`] | §5.4 | LTMinc closed-form prediction (Equation 3) |
//! | [`streaming`] | §5.4 | batch-over-batch online training |
//! | [`positive_only`] | §6.2 | LTMpos ablation (negative claims dropped) |
//! | [`exact`] | App. A | exact enumeration oracle for small instances |
//! | [`adversarial`] | §7 | iterative malicious-source filtering |
//! | [`realvalued`] | §7 | Gaussian observation model for real-valued loss |
//! | [`multi_attr`] | §7 | joint fitting of multiple attribute types |

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod adversarial;
pub mod counts;
pub mod exact;
pub mod gibbs;
pub mod incremental;
pub mod loglik;
pub mod multi_attr;
pub mod positive_only;
pub mod priors;
pub mod quality;
pub mod realvalued;
pub mod streaming;

pub use adversarial::{fit_filtered, AdversarialFilter, FilteredFit};
pub use counts::{ExpectedCounts, GibbsCounts};
pub use gibbs::{
    fit, fit_chains, fit_chains_with_source_priors, fit_with_schedules, fit_with_source_priors,
    rhat_binary_means, worst_rhat, Arithmetic, ChainDiagnostics, FitDiagnostics, LtmConfig, LtmFit,
    MultiChainFit, SampleSchedule,
};
pub use incremental::IncrementalLtm;
pub use multi_attr::{fit_joint, MultiAttrConfig};
pub use priors::{BetaPair, Priors, SourcePriors};
pub use quality::{QualityRecord, SourceQuality};
pub use realvalued::{
    IncrementalRealLtm, NigPrior, RealClaim, RealClaimDb, RealLtmConfig, RealLtmFit,
    RealMultiChainFit, RealSuffStats, StreamingRealLtm,
};
pub use streaming::{StreamError, StreamingLtm};
