//! Per-source confusion-count matrices.
//!
//! The collapsed Gibbs sampler maintains, for every source `s`, the four
//! counts `n_{s,i,j}` = number of `s`'s claims with observation `j` on
//! facts currently labeled `i` (paper Equation 2):
//!
//! ```text
//! n_{s,1,1} true positives     n_{s,0,1} false positives
//! n_{s,1,0} false negatives    n_{s,0,0} true negatives
//! ```
//!
//! [`GibbsCounts`] stores them as integers updated in O(1) per flip;
//! [`ExpectedCounts`] stores their posterior expectations
//! `E[n_{s,i,j}] = Σ_{c: s_c = s, o_c = j} p(t_{f_c} = i)` (paper §5.3).

use ltm_model::{ClaimDb, SourceId, TruthAssignment};

/// Flat index of `(source, label, observation)` in a count table.
#[inline]
fn idx(s: SourceId, label: bool, obs: bool) -> usize {
    s.index() * 4 + (label as usize) * 2 + obs as usize
}

/// Integer confusion counts per source, updated incrementally by the
/// sampler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GibbsCounts {
    data: Vec<u32>,
}

impl GibbsCounts {
    /// Zero counts for `num_sources` sources.
    pub fn zeros(num_sources: usize) -> Self {
        Self {
            data: vec![0; num_sources * 4],
        }
    }

    /// Counts computed from a full truth labeling: every claim contributes
    /// to `n[s][t_f][o]`.
    pub fn from_labels(db: &ClaimDb, labels: &[bool]) -> Self {
        assert_eq!(labels.len(), db.num_facts(), "one label per fact required");
        let mut counts = Self::zeros(db.num_sources());
        for f in db.fact_ids() {
            let t = labels[f.index()];
            for (s, o) in db.claims_of_fact(f) {
                counts.inc(s, t, o);
            }
        }
        counts
    }

    /// `n_{s,label,obs}`.
    #[inline]
    pub fn get(&self, s: SourceId, label: bool, obs: bool) -> u32 {
        self.data[idx(s, label, obs)]
    }

    /// Increments `n_{s,label,obs}`.
    #[inline]
    pub fn inc(&mut self, s: SourceId, label: bool, obs: bool) {
        self.data[idx(s, label, obs)] += 1;
    }

    /// Decrements `n_{s,label,obs}`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the count would go negative (that would
    /// mean the sampler's bookkeeping diverged from the labeling).
    #[inline]
    pub fn dec(&mut self, s: SourceId, label: bool, obs: bool) {
        debug_assert!(
            self.data[idx(s, label, obs)] > 0,
            "count underflow at source {s}, label {label}, obs {obs}"
        );
        self.data[idx(s, label, obs)] -= 1;
    }

    /// Moves one claim with observation `obs` of source `s` from label
    /// `from` to label `!from` — the per-flip update of Algorithm 1.
    #[inline]
    pub fn flip(&mut self, s: SourceId, from: bool, obs: bool) {
        self.dec(s, from, obs);
        self.inc(s, !from, obs);
    }

    /// Total claims of source `s` under label `label`
    /// (`n_{s,label,0} + n_{s,label,1}`).
    #[inline]
    pub fn label_total(&self, s: SourceId, label: bool) -> u32 {
        self.data[idx(s, label, false)] + self.data[idx(s, label, true)]
    }

    /// Number of sources covered.
    pub fn num_sources(&self) -> usize {
        self.data.len() / 4
    }

    /// Total count across all cells (= number of claims accounted for).
    pub fn total(&self) -> u64 {
        self.data.iter().map(|&c| c as u64).sum()
    }
}

/// Expected confusion counts per source under a posterior truth assignment
/// (paper §5.3).
#[derive(Debug, Clone, PartialEq)]
pub struct ExpectedCounts {
    data: Vec<f64>,
}

impl ExpectedCounts {
    /// Zero counts for `num_sources` sources.
    pub fn zeros(num_sources: usize) -> Self {
        Self {
            data: vec![0.0; num_sources * 4],
        }
    }

    /// Computes `E[n_{s,i,j}] = Σ_{c: s_c = s, o_c = j} p(t_{f_c} = i)`
    /// from posterior truth probabilities.
    pub fn from_posterior(db: &ClaimDb, truth: &TruthAssignment) -> Self {
        assert_eq!(
            truth.len(),
            db.num_facts(),
            "posterior must cover every fact"
        );
        let mut e = Self::zeros(db.num_sources());
        for f in db.fact_ids() {
            let p1 = truth.prob(f);
            let p0 = 1.0 - p1;
            for (s, o) in db.claims_of_fact(f) {
                e.data[idx(s, true, o)] += p1;
                e.data[idx(s, false, o)] += p0;
            }
        }
        e
    }

    /// `E[n_{s,label,obs}]`.
    #[inline]
    pub fn get(&self, s: SourceId, label: bool, obs: bool) -> f64 {
        self.data[idx(s, label, obs)]
    }

    /// Adds another table cell-wise (used by streaming training to
    /// accumulate counts across batches).
    pub fn add_assign(&mut self, other: &ExpectedCounts) {
        assert_eq!(self.data.len(), other.data.len(), "source count mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Number of sources covered.
    pub fn num_sources(&self) -> usize {
        self.data.len() / 4
    }

    /// The raw cell array, 4 entries per source in `(source, label, obs)`
    /// order — the persistence surface for snapshotting a streaming
    /// accumulator (see `ltm-serve`'s snapshot format).
    pub fn cells(&self) -> &[f64] {
        &self.data
    }

    /// Rebuilds a table from cells previously obtained via
    /// [`ExpectedCounts::cells`].
    ///
    /// # Panics
    ///
    /// Panics if `cells` is not a whole number of 4-cell source blocks.
    pub fn from_cells(cells: Vec<f64>) -> Self {
        assert!(
            cells.len().is_multiple_of(4),
            "expected-count cells come in blocks of 4 per source, got {}",
            cells.len()
        );
        Self { data: cells }
    }

    /// Grows the table to cover at least `num_sources` sources.
    pub fn grow(&mut self, num_sources: usize) {
        if num_sources * 4 > self.data.len() {
            self.data.resize(num_sources * 4, 0.0);
        }
    }

    /// Total expected count (= number of claims accounted for).
    pub fn total(&self) -> f64 {
        self.data.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltm_model::{AttrId, Claim, EntityId, Fact, FactId};

    /// Two facts, two sources; source 0 asserts both, source 1 asserts
    /// only fact 0 (negative claim on fact 1).
    fn tiny_db() -> ClaimDb {
        let facts = vec![
            Fact {
                entity: EntityId::new(0),
                attr: AttrId::new(0),
            },
            Fact {
                entity: EntityId::new(0),
                attr: AttrId::new(1),
            },
        ];
        let claims = vec![
            Claim {
                fact: FactId::new(0),
                source: SourceId::new(0),
                observation: true,
            },
            Claim {
                fact: FactId::new(0),
                source: SourceId::new(1),
                observation: true,
            },
            Claim {
                fact: FactId::new(1),
                source: SourceId::new(0),
                observation: true,
            },
            Claim {
                fact: FactId::new(1),
                source: SourceId::new(1),
                observation: false,
            },
        ];
        ClaimDb::from_parts(facts, claims, 2)
    }

    #[test]
    fn from_labels_counts_confusion() {
        let db = tiny_db();
        // Fact 0 true, fact 1 false.
        let c = GibbsCounts::from_labels(&db, &[true, false]);
        let s0 = SourceId::new(0);
        let s1 = SourceId::new(1);
        assert_eq!(c.get(s0, true, true), 1); // TP on fact 0
        assert_eq!(c.get(s0, false, true), 1); // FP on fact 1
        assert_eq!(c.get(s1, true, true), 1); // TP on fact 0
        assert_eq!(c.get(s1, false, false), 1); // TN on fact 1
        assert_eq!(c.get(s1, true, false), 0);
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn flip_moves_one_unit() {
        let db = tiny_db();
        let mut c = GibbsCounts::from_labels(&db, &[true, false]);
        let s0 = SourceId::new(0);
        // Relabel fact 1 as true: s0's claim moves from (false,T) to (true,T).
        c.flip(s0, false, true);
        assert_eq!(c.get(s0, false, true), 0);
        assert_eq!(c.get(s0, true, true), 2);
        assert_eq!(c.total(), 4, "flip preserves total");
    }

    #[test]
    fn label_total_sums_observations() {
        let db = tiny_db();
        let c = GibbsCounts::from_labels(&db, &[true, true]);
        let s1 = SourceId::new(1);
        assert_eq!(c.label_total(s1, true), 2); // one TP + one FN
        assert_eq!(c.label_total(s1, false), 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "count underflow")]
    fn dec_underflow_caught_in_debug() {
        let mut c = GibbsCounts::zeros(1);
        c.dec(SourceId::new(0), true, true);
    }

    #[test]
    fn expected_counts_from_posterior() {
        let db = tiny_db();
        let t = TruthAssignment::new(vec![1.0, 0.25]);
        let e = ExpectedCounts::from_posterior(&db, &t);
        let s1 = SourceId::new(1);
        // s1: positive claim on fact 0 (p=1) → E[TP] += 1.
        assert!((e.get(s1, true, true) - 1.0).abs() < 1e-12);
        // s1: negative claim on fact 1 → E[FN] += 0.25, E[TN] += 0.75.
        assert!((e.get(s1, true, false) - 0.25).abs() < 1e-12);
        assert!((e.get(s1, false, false) - 0.75).abs() < 1e-12);
        // Totals: every claim contributes p + (1−p) = 1.
        assert!((e.total() - db.num_claims() as f64).abs() < 1e-12);
    }

    #[test]
    fn cells_round_trip() {
        let db = tiny_db();
        let t = TruthAssignment::new(vec![1.0, 0.25]);
        let e = ExpectedCounts::from_posterior(&db, &t);
        let rebuilt = ExpectedCounts::from_cells(e.cells().to_vec());
        assert_eq!(rebuilt, e);
        assert_eq!(rebuilt.num_sources(), 2);
    }

    #[test]
    #[should_panic(expected = "blocks of 4")]
    fn from_cells_rejects_ragged_input() {
        ExpectedCounts::from_cells(vec![0.0; 6]);
    }

    #[test]
    fn expected_counts_accumulate_and_grow() {
        let db = tiny_db();
        let t = TruthAssignment::new(vec![0.5, 0.5]);
        let e1 = ExpectedCounts::from_posterior(&db, &t);
        let mut acc = ExpectedCounts::zeros(2);
        acc.add_assign(&e1);
        acc.add_assign(&e1);
        assert!((acc.total() - 8.0).abs() < 1e-12);
        acc.grow(5);
        assert_eq!(acc.num_sources(), 5);
        assert!((acc.total() - 8.0).abs() < 1e-12, "growing keeps counts");
    }

    #[test]
    fn expected_counts_match_gibbs_counts_at_certainty() {
        // With a deterministic posterior the expected counts equal the
        // integer counts.
        let db = tiny_db();
        let labels = [true, false];
        let g = GibbsCounts::from_labels(&db, &labels);
        let t = TruthAssignment::new(labels.iter().map(|&b| b as u8 as f64).collect());
        let e = ExpectedCounts::from_posterior(&db, &t);
        for s in db.source_ids() {
            for label in [false, true] {
                for obs in [false, true] {
                    assert!((e.get(s, label, obs) - g.get(s, label, obs) as f64).abs() < 1e-12);
                }
            }
        }
    }
}
