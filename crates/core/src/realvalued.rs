//! Real-valued observation model (paper §7, "Real-valued loss").
//!
//! The Bernoulli observation model treats every claim as exactly right or
//! wrong, but "in practice loss can be real-valued, e.g., inexact matches
//! of terms, numerical attributes"; the paper suggests "a Gaussian to
//! generate observations from facts and source quality instead of the
//! Bernoulli". This module implements that variant.
//!
//! Each claim carries a real value `v_c` (e.g. a string-similarity score
//! between the source's value and the fact's canonical value). The
//! generative process keeps the latent truth machinery and swaps the
//! observation likelihood:
//!
//! ```text
//! t_f ~ Bernoulli(θ_f),      θ_f ~ Beta(β)
//! v_c | t_f = i  ~  Normal(μ_{i,s_c}, σ²_{i,s_c})
//! (μ_{i,s}, σ²_{i,s}) ~ NormalInverseGamma(m_i, κ_i, a_i, b_i)
//! ```
//!
//! The per-source, per-side Gaussian parameters are integrated out by
//! Normal–Inverse-Gamma conjugacy, so — exactly as in the Bernoulli model
//! — the collapsed Gibbs sampler only resamples the truth labels. Each
//! claim's contribution is the NIG posterior-predictive (a Student-t)
//! under the counts of the *other* claims currently assigned to that side.
//! Sufficient statistics per (source, side) are `(n, Σv, Σv²)`, updated in
//! O(1) per flip, preserving the linear iteration cost.

use ltm_model::{FactId, SourceId, TruthAssignment};
use ltm_stats::rng::rng_from_seed;
use ltm_stats::special::{ln_gamma, sigmoid};
use rand::Rng;

use crate::priors::BetaPair;

/// A real-valued claim: a source's scored assertion about a fact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RealClaim {
    /// The fact the claim refers to.
    pub fact: FactId,
    /// The asserting source.
    pub source: SourceId,
    /// The observed value (similarity score, numeric reading, …).
    pub value: f64,
}

/// A claim database with real-valued observations, in fact-major CSR
/// layout like [`ltm_model::ClaimDb`].
#[derive(Debug, Clone)]
pub struct RealClaimDb {
    num_facts: usize,
    num_sources: usize,
    claim_source: Vec<SourceId>,
    claim_value: Vec<f64>,
    fact_offsets: Vec<u32>,
}

impl RealClaimDb {
    /// Builds the database from claims.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range fact/source ids, non-finite values, or
    /// duplicate `(fact, source)` pairs.
    pub fn new(num_facts: usize, num_sources: usize, mut claims: Vec<RealClaim>) -> Self {
        let mut seen = std::collections::HashSet::with_capacity(claims.len());
        for c in &claims {
            assert!(
                c.fact.index() < num_facts,
                "claim references fact {}",
                c.fact
            );
            assert!(
                c.source.index() < num_sources,
                "claim references source {}",
                c.source
            );
            assert!(c.value.is_finite(), "claim value must be finite");
            assert!(
                seen.insert((c.fact, c.source)),
                "duplicate claim for (fact {}, source {})",
                c.fact,
                c.source
            );
        }
        claims.sort_unstable_by_key(|x| (x.fact, x.source));
        let mut fact_offsets = vec![0u32; num_facts + 1];
        for c in &claims {
            fact_offsets[c.fact.index() + 1] += 1;
        }
        for i in 0..num_facts {
            fact_offsets[i + 1] += fact_offsets[i];
        }
        Self {
            num_facts,
            num_sources,
            claim_source: claims.iter().map(|c| c.source).collect(),
            claim_value: claims.iter().map(|c| c.value).collect(),
            fact_offsets,
        }
    }

    /// Number of facts.
    pub fn num_facts(&self) -> usize {
        self.num_facts
    }

    /// Number of sources.
    pub fn num_sources(&self) -> usize {
        self.num_sources
    }

    /// Number of claims.
    pub fn num_claims(&self) -> usize {
        self.claim_source.len()
    }

    /// `(source, value)` pairs of fact `f`'s claims.
    pub fn claims_of_fact(&self, f: FactId) -> impl Iterator<Item = (SourceId, f64)> + '_ {
        let range =
            self.fact_offsets[f.index()] as usize..self.fact_offsets[f.index() + 1] as usize;
        self.claim_source[range.clone()]
            .iter()
            .copied()
            .zip(self.claim_value[range].iter().copied())
    }
}

/// Normal–Inverse-Gamma prior for one observation side.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NigPrior {
    /// Prior mean `m`.
    pub mean: f64,
    /// Prior mean strength `κ > 0` (pseudo-observations of the mean).
    pub kappa: f64,
    /// Inverse-gamma shape `a > 0`.
    pub a: f64,
    /// Inverse-gamma rate `b > 0`.
    pub b: f64,
}

impl NigPrior {
    /// A prior centred at `mean` with the given strength and a variance
    /// prior of roughly `spread²`.
    pub fn centered(mean: f64, kappa: f64, spread: f64) -> Self {
        assert!(kappa > 0.0 && spread > 0.0);
        Self {
            mean,
            kappa,
            a: 2.0,
            b: spread * spread,
        }
    }
}

/// Configuration of the real-valued model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RealLtmConfig {
    /// NIG prior for observations of **false** facts (side 0); e.g.
    /// centred at a low similarity score.
    pub side0: NigPrior,
    /// NIG prior for observations of **true** facts (side 1); e.g. centred
    /// near 1.
    pub side1: NigPrior,
    /// `β` prior on fact truth.
    pub beta: BetaPair,
    /// Total Gibbs iterations.
    pub iterations: usize,
    /// Burn-in iterations.
    pub burn_in: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RealLtmConfig {
    fn default() -> Self {
        // κ = 10 pseudo-observations per side: strong enough to keep the
        // "true" side anchored near its prior mean (the model is otherwise
        // symmetric under swapping the two sides — the real-valued
        // analogue of the label-flip ambiguity the Bernoulli model breaks
        // with its strong α₀ prior).
        Self {
            side0: NigPrior::centered(0.25, 10.0, 0.25),
            side1: NigPrior::centered(0.85, 10.0, 0.25),
            beta: BetaPair::new(10.0, 10.0),
            iterations: 200,
            burn_in: 50,
            seed: 42,
        }
    }
}

/// The fitted real-valued model.
#[derive(Debug, Clone)]
pub struct RealLtmFit {
    /// Posterior truth probabilities per fact.
    pub truth: TruthAssignment,
    /// Posterior mean of each source's **true-side** observation value
    /// (high = the source scores true facts highly).
    pub mean_true: Vec<f64>,
    /// Posterior mean of each source's **false-side** observation value.
    pub mean_false: Vec<f64>,
}

/// Per-(source, side) sufficient statistics.
#[derive(Debug, Clone, Default)]
struct Suffstats {
    n: Vec<f64>,
    sum: Vec<f64>,
    ssq: Vec<f64>,
}

impl Suffstats {
    fn new(num_sources: usize) -> Self {
        Self {
            n: vec![0.0; num_sources * 2],
            sum: vec![0.0; num_sources * 2],
            ssq: vec![0.0; num_sources * 2],
        }
    }

    #[inline]
    fn idx(s: SourceId, side: bool) -> usize {
        s.index() * 2 + side as usize
    }

    #[inline]
    fn add(&mut self, s: SourceId, side: bool, v: f64) {
        let i = Self::idx(s, side);
        self.n[i] += 1.0;
        self.sum[i] += v;
        self.ssq[i] += v * v;
    }

    #[inline]
    fn remove(&mut self, s: SourceId, side: bool, v: f64) {
        let i = Self::idx(s, side);
        self.n[i] -= 1.0;
        self.sum[i] -= v;
        self.ssq[i] -= v * v;
    }

    /// Log posterior-predictive density of `v` under the NIG posterior for
    /// `(s, side)` given `prior` and the current sufficient statistics.
    fn ln_predictive(&self, s: SourceId, side: bool, v: f64, prior: &NigPrior) -> f64 {
        let i = Self::idx(s, side);
        let n = self.n[i];
        let (kappa_n, mu_n, a_n, b_n);
        if n > 0.0 {
            let mean = self.sum[i] / n;
            // Guard tiny negative values from floating-point cancellation.
            let ss = (self.ssq[i] - self.sum[i] * self.sum[i] / n).max(0.0);
            kappa_n = prior.kappa + n;
            mu_n = (prior.kappa * prior.mean + self.sum[i]) / kappa_n;
            a_n = prior.a + n / 2.0;
            b_n = prior.b
                + 0.5 * ss
                + prior.kappa * n * (mean - prior.mean) * (mean - prior.mean) / (2.0 * kappa_n);
        } else {
            kappa_n = prior.kappa;
            mu_n = prior.mean;
            a_n = prior.a;
            b_n = prior.b;
        }
        // Student-t predictive: df = 2a, loc = μ, scale² = b(κ+1)/(aκ).
        let df = 2.0 * a_n;
        let scale2 = b_n * (kappa_n + 1.0) / (a_n * kappa_n);
        ln_student_t(v, df, mu_n, scale2.sqrt())
    }
}

/// Log-density of the Student-t distribution with `df` degrees of freedom,
/// location `loc`, and scale `scale`.
fn ln_student_t(v: f64, df: f64, loc: f64, scale: f64) -> f64 {
    let z = (v - loc) / scale;
    ln_gamma((df + 1.0) / 2.0)
        - ln_gamma(df / 2.0)
        - 0.5 * (df * std::f64::consts::PI).ln()
        - scale.ln()
        - (df + 1.0) / 2.0 * (1.0 + z * z / df).ln()
}

/// Fits the real-valued Latent Truth Model by collapsed Gibbs sampling.
pub fn fit(db: &RealClaimDb, config: &RealLtmConfig) -> RealLtmFit {
    assert!(
        config.burn_in < config.iterations,
        "burn_in must be < iterations"
    );
    let mut rng = rng_from_seed(config.seed);
    // Initialise each fact on the side whose prior mean is closer to its
    // average claim value. This plants the chain in the intended mode;
    // together with the κ-weighted side priors it resolves the two-sided
    // label-swap symmetry of the Gaussian model.
    let mut labels: Vec<bool> = (0..db.num_facts())
        .map(|i| {
            let f = FactId::from_usize(i);
            let (mut sum, mut n) = (0.0, 0usize);
            for (_, v) in db.claims_of_fact(f) {
                sum += v;
                n += 1;
            }
            if n == 0 {
                rng.gen::<f64>() < 0.5
            } else {
                let mean = sum / n as f64;
                (mean - config.side1.mean).abs() < (mean - config.side0.mean).abs()
            }
        })
        .collect();

    let mut stats = Suffstats::new(db.num_sources());
    #[allow(clippy::needless_range_loop)] // i is both FactId and label index
    for i in 0..db.num_facts() {
        let f = FactId::from_usize(i);
        for (s, v) in db.claims_of_fact(f) {
            stats.add(s, labels[i], v);
        }
    }

    let mut acc = vec![0.0f64; db.num_facts()];
    let mut samples = 0usize;
    for iter in 1..=config.iterations {
        #[allow(clippy::needless_range_loop)] // i is both FactId and label index
        for i in 0..db.num_facts() {
            let f = FactId::from_usize(i);
            let current = labels[i];
            let proposed = !current;
            // Remove this fact's claims from the current side so both
            // sides are evaluated on "everyone else's" statistics.
            for (s, v) in db.claims_of_fact(f) {
                stats.remove(s, current, v);
            }
            let prior_for = |side: bool| if side { &config.side1 } else { &config.side0 };
            let mut log_odds = (config.beta.count(proposed) / config.beta.count(current)).ln();
            for (s, v) in db.claims_of_fact(f) {
                log_odds += stats.ln_predictive(s, proposed, v, prior_for(proposed))
                    - stats.ln_predictive(s, current, v, prior_for(current));
            }
            let flip = rng.gen::<f64>() < sigmoid(log_odds);
            let new_label = if flip { proposed } else { current };
            labels[i] = new_label;
            for (s, v) in db.claims_of_fact(f) {
                stats.add(s, new_label, v);
            }
        }
        if iter > config.burn_in {
            samples += 1;
            for (a, &t) in acc.iter_mut().zip(&labels) {
                *a += t as u8 as f64;
            }
        }
    }

    let truth = TruthAssignment::new(acc.into_iter().map(|x| x / samples as f64).collect());

    // Posterior side means per source from the final expected statistics:
    // recompute with soft assignments from the posterior.
    let mut soft = Suffstats::new(db.num_sources());
    for i in 0..db.num_facts() {
        let f = FactId::from_usize(i);
        let p1 = truth.prob(f);
        for (s, v) in db.claims_of_fact(f) {
            let j1 = Suffstats::idx(s, true);
            let j0 = Suffstats::idx(s, false);
            soft.n[j1] += p1;
            soft.sum[j1] += p1 * v;
            soft.n[j0] += 1.0 - p1;
            soft.sum[j0] += (1.0 - p1) * v;
        }
    }
    let side_mean = |s: usize, side: bool, prior: &NigPrior| {
        let j = s * 2 + side as usize;
        (prior.kappa * prior.mean + soft.sum[j]) / (prior.kappa + soft.n[j])
    };
    let mean_true = (0..db.num_sources())
        .map(|s| side_mean(s, true, &config.side1))
        .collect();
    let mean_false = (0..db.num_sources())
        .map(|s| side_mean(s, false, &config.side0))
        .collect();

    RealLtmFit {
        truth,
        mean_true,
        mean_false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic real-valued data: `n` facts alternating true/false; each
    /// of `k` sources scores every fact — near `hi` for true facts, near
    /// `lo` for false ones, with Gaussian-ish noise from a seeded RNG.
    fn two_cluster_db(
        n: usize,
        k: usize,
        hi: f64,
        lo: f64,
        noise: f64,
        seed: u64,
    ) -> (RealClaimDb, Vec<bool>) {
        let mut rng = rng_from_seed(seed);
        let truth: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        let mut claims = Vec::new();
        for (i, &t) in truth.iter().enumerate() {
            for s in 0..k {
                // Box–Muller normal.
                let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                let u2: f64 = rng.gen();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let center = if t { hi } else { lo };
                claims.push(RealClaim {
                    fact: FactId::from_usize(i),
                    source: SourceId::from_usize(s),
                    value: center + noise * z,
                });
            }
        }
        (RealClaimDb::new(n, k, claims), truth)
    }

    #[test]
    fn recovers_two_clusters() {
        let (db, truth) = two_cluster_db(200, 4, 0.9, 0.2, 0.08, 5);
        let fit = fit(&db, &RealLtmConfig::default());
        let correct = (0..200)
            .filter(|&i| (fit.truth.prob(FactId::from_usize(i)) >= 0.5) == truth[i])
            .count();
        assert!(correct >= 195, "correct = {correct}/200");
    }

    #[test]
    fn side_means_recovered() {
        let (db, _) = two_cluster_db(300, 3, 0.9, 0.2, 0.05, 6);
        let fit = fit(&db, &RealLtmConfig::default());
        for s in 0..3 {
            assert!(
                (fit.mean_true[s] - 0.9).abs() < 0.05,
                "mean_true[{s}] = {}",
                fit.mean_true[s]
            );
            assert!(
                (fit.mean_false[s] - 0.2).abs() < 0.05,
                "mean_false[{s}] = {}",
                fit.mean_false[s]
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (db, _) = two_cluster_db(50, 3, 0.8, 0.3, 0.1, 7);
        let cfg = RealLtmConfig::default();
        assert_eq!(fit(&db, &cfg).truth, fit(&db, &cfg).truth);
    }

    #[test]
    fn overlapping_clusters_yield_uncertainty() {
        // With heavy noise the posterior should hedge: not all facts at
        // 0/1.
        let (db, _) = two_cluster_db(100, 2, 0.6, 0.4, 0.3, 8);
        let f = fit(&db, &RealLtmConfig::default());
        let uncertain = (0..100)
            .filter(|&i| {
                let p = f.truth.prob(FactId::from_usize(i));
                p > 0.05 && p < 0.95
            })
            .count();
        assert!(uncertain > 10, "uncertain = {uncertain}");
    }

    #[test]
    fn ln_student_t_is_normalized_enough() {
        // Crude integration check over a wide grid.
        let mut acc = 0.0;
        let (df, loc, scale) = (5.0, 0.3, 0.7);
        let n = 40_000;
        for i in 0..n {
            let v = -20.0 + 40.0 * (i as f64 + 0.5) / n as f64;
            acc += ln_student_t(v, df, loc, scale).exp() * 40.0 / n as f64;
        }
        assert!((acc - 1.0).abs() < 1e-3, "integral = {acc}");
    }

    #[test]
    #[should_panic(expected = "duplicate claim")]
    fn rejects_duplicate_claims() {
        let claims = vec![
            RealClaim {
                fact: FactId::new(0),
                source: SourceId::new(0),
                value: 0.5,
            },
            RealClaim {
                fact: FactId::new(0),
                source: SourceId::new(0),
                value: 0.6,
            },
        ];
        RealClaimDb::new(1, 1, claims);
    }

    #[test]
    fn empty_database_fit() {
        let db = RealClaimDb::new(0, 0, vec![]);
        let f = fit(&db, &RealLtmConfig::default());
        assert!(f.truth.is_empty());
    }
}
