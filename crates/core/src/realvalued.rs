//! Real-valued observation model (paper §7, "Real-valued loss").
//!
//! The Bernoulli observation model treats every claim as exactly right or
//! wrong, but "in practice loss can be real-valued, e.g., inexact matches
//! of terms, numerical attributes"; the paper suggests "a Gaussian to
//! generate observations from facts and source quality instead of the
//! Bernoulli". This module implements that variant.
//!
//! Each claim carries a real value `v_c` (e.g. a string-similarity score
//! between the source's value and the fact's canonical value). The
//! generative process keeps the latent truth machinery and swaps the
//! observation likelihood:
//!
//! ```text
//! t_f ~ Bernoulli(θ_f),      θ_f ~ Beta(β)
//! v_c | t_f = i  ~  Normal(μ_{i,s_c}, σ²_{i,s_c})
//! (μ_{i,s}, σ²_{i,s}) ~ NormalInverseGamma(m_i, κ_i, a_i, b_i)
//! ```
//!
//! The per-source, per-side Gaussian parameters are integrated out by
//! Normal–Inverse-Gamma conjugacy, so — exactly as in the Bernoulli model
//! — the collapsed Gibbs sampler only resamples the truth labels. Each
//! claim's contribution is the NIG posterior-predictive (a Student-t)
//! under the counts of the *other* claims currently assigned to that side.
//! Sufficient statistics per (source, side) are `(n, Σv, Σv²)`, updated in
//! O(1) per flip, preserving the linear iteration cost.

use ltm_model::{FactId, SourceId, TruthAssignment};
use ltm_stats::rng::{derive_seed, rng_from_seed};
use ltm_stats::special::{ln_gamma, sigmoid};
use rand::Rng;
use rayon::prelude::*;

use crate::gibbs::{rhat_binary_means, worst_rhat};
use crate::priors::BetaPair;
use crate::streaming::StreamError;

/// A real-valued claim: a source's scored assertion about a fact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RealClaim {
    /// The fact the claim refers to.
    pub fact: FactId,
    /// The asserting source.
    pub source: SourceId,
    /// The observed value (similarity score, numeric reading, …).
    pub value: f64,
}

/// A claim database with real-valued observations, in fact-major CSR
/// layout like [`ltm_model::ClaimDb`].
#[derive(Debug, Clone)]
pub struct RealClaimDb {
    num_facts: usize,
    num_sources: usize,
    claim_source: Vec<SourceId>,
    claim_value: Vec<f64>,
    fact_offsets: Vec<u32>,
}

impl RealClaimDb {
    /// Builds the database from claims.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range fact/source ids, non-finite values, or
    /// duplicate `(fact, source)` pairs.
    pub fn new(num_facts: usize, num_sources: usize, mut claims: Vec<RealClaim>) -> Self {
        let mut seen = std::collections::HashSet::with_capacity(claims.len());
        for c in &claims {
            assert!(
                c.fact.index() < num_facts,
                "claim references fact {}",
                c.fact
            );
            assert!(
                c.source.index() < num_sources,
                "claim references source {}",
                c.source
            );
            assert!(c.value.is_finite(), "claim value must be finite");
            assert!(
                seen.insert((c.fact, c.source)),
                "duplicate claim for (fact {}, source {})",
                c.fact,
                c.source
            );
        }
        claims.sort_unstable_by_key(|x| (x.fact, x.source));
        let mut fact_offsets = vec![0u32; num_facts + 1];
        for c in &claims {
            fact_offsets[c.fact.index() + 1] += 1;
        }
        for i in 0..num_facts {
            fact_offsets[i + 1] += fact_offsets[i];
        }
        Self {
            num_facts,
            num_sources,
            claim_source: claims.iter().map(|c| c.source).collect(),
            claim_value: claims.iter().map(|c| c.value).collect(),
            fact_offsets,
        }
    }

    /// Number of facts.
    pub fn num_facts(&self) -> usize {
        self.num_facts
    }

    /// Number of sources.
    pub fn num_sources(&self) -> usize {
        self.num_sources
    }

    /// Number of claims.
    pub fn num_claims(&self) -> usize {
        self.claim_source.len()
    }

    /// All fact ids, in order.
    pub fn fact_ids(&self) -> impl Iterator<Item = FactId> {
        (0..self.num_facts).map(FactId::from_usize)
    }

    /// `(source, value)` pairs of fact `f`'s claims.
    pub fn claims_of_fact(&self, f: FactId) -> impl Iterator<Item = (SourceId, f64)> + '_ {
        let range =
            self.fact_offsets[f.index()] as usize..self.fact_offsets[f.index() + 1] as usize;
        self.claim_source[range.clone()]
            .iter()
            .copied()
            .zip(self.claim_value[range].iter().copied())
    }
}

/// Normal–Inverse-Gamma prior for one observation side.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NigPrior {
    /// Prior mean `m`.
    pub mean: f64,
    /// Prior mean strength `κ > 0` (pseudo-observations of the mean).
    pub kappa: f64,
    /// Inverse-gamma shape `a > 0`.
    pub a: f64,
    /// Inverse-gamma rate `b > 0`.
    pub b: f64,
}

impl NigPrior {
    /// A prior centred at `mean` with the given strength and a variance
    /// prior of roughly `spread²`.
    pub fn centered(mean: f64, kappa: f64, spread: f64) -> Self {
        assert!(kappa > 0.0 && spread > 0.0);
        Self {
            mean,
            kappa,
            a: 2.0,
            b: spread * spread,
        }
    }
}

/// Configuration of the real-valued model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RealLtmConfig {
    /// NIG prior for observations of **false** facts (side 0); e.g.
    /// centred at a low similarity score.
    pub side0: NigPrior,
    /// NIG prior for observations of **true** facts (side 1); e.g. centred
    /// near 1.
    pub side1: NigPrior,
    /// `β` prior on fact truth.
    pub beta: BetaPair,
    /// Total Gibbs iterations.
    pub iterations: usize,
    /// Burn-in iterations.
    pub burn_in: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RealLtmConfig {
    fn default() -> Self {
        // κ = 10 pseudo-observations per side: strong enough to keep the
        // "true" side anchored near its prior mean (the model is otherwise
        // symmetric under swapping the two sides — the real-valued
        // analogue of the label-flip ambiguity the Bernoulli model breaks
        // with its strong α₀ prior).
        Self {
            side0: NigPrior::centered(0.25, 10.0, 0.25),
            side1: NigPrior::centered(0.85, 10.0, 0.25),
            beta: BetaPair::new(10.0, 10.0),
            iterations: 200,
            burn_in: 50,
            seed: 42,
        }
    }
}

/// The fitted real-valued model.
#[derive(Debug, Clone)]
pub struct RealLtmFit {
    /// Posterior truth probabilities per fact.
    pub truth: TruthAssignment,
    /// Posterior mean of each source's **true-side** observation value
    /// (high = the source scores true facts highly).
    pub mean_true: Vec<f64>,
    /// Posterior mean of each source's **false-side** observation value.
    pub mean_false: Vec<f64>,
    /// Posterior-weighted sufficient statistics of *this batch only* —
    /// the real-valued analogue of [`crate::ExpectedCounts`], folded into
    /// the accumulator by [`StreamingRealLtm`].
    pub expected: RealSuffStats,
}

/// Per-`(source, side)` Gaussian sufficient statistics: observation count
/// `n`, value sum `Σv`, and sum of squares `Σv²` — six cells per source.
///
/// This is both the sampler's working table and the *persistence surface*
/// of the real-valued model: [`RealSuffStats::cells`] /
/// [`RealSuffStats::from_cells`] round-trip it through `ltm-serve`
/// snapshots exactly like [`crate::ExpectedCounts::cells`] does for the
/// Bernoulli model. Soft (posterior-weighted) statistics accumulate across
/// batches by plain addition, which is what makes the streaming trainer's
/// "prior + everything seen so far" update exact under NIG conjugacy.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RealSuffStats {
    /// `cells[s * 6 + side * 3 + {0: n, 1: Σv, 2: Σv²}]`.
    cells: Vec<f64>,
}

/// Cells per source in [`RealSuffStats`]: `(n, Σv, Σv²)` × 2 sides.
pub const REAL_CELLS_PER_SOURCE: usize = 6;

impl RealSuffStats {
    /// An all-zero table over `num_sources` sources.
    pub fn zeros(num_sources: usize) -> Self {
        Self {
            cells: vec![0.0; num_sources * REAL_CELLS_PER_SOURCE],
        }
    }

    /// Sources covered by the table.
    pub fn num_sources(&self) -> usize {
        self.cells.len() / REAL_CELLS_PER_SOURCE
    }

    /// The raw cell array, [`REAL_CELLS_PER_SOURCE`] entries per source —
    /// the persistence surface for snapshotting a streaming accumulator.
    pub fn cells(&self) -> &[f64] {
        &self.cells
    }

    /// Rebuilds a table from cells previously obtained via
    /// [`RealSuffStats::cells`].
    ///
    /// # Panics
    ///
    /// Panics if `cells` is not a whole number of per-source blocks.
    pub fn from_cells(cells: Vec<f64>) -> Self {
        assert!(
            cells.len().is_multiple_of(REAL_CELLS_PER_SOURCE),
            "real suffstats cells come in blocks of {REAL_CELLS_PER_SOURCE} per source, got {}",
            cells.len()
        );
        Self { cells }
    }

    /// Grows the table to cover at least `num_sources` sources.
    pub fn grow(&mut self, num_sources: usize) {
        if num_sources * REAL_CELLS_PER_SOURCE > self.cells.len() {
            self.cells.resize(num_sources * REAL_CELLS_PER_SOURCE, 0.0);
        }
    }

    /// Adds `other`'s cells into this table (growing as needed).
    pub fn add_assign(&mut self, other: &RealSuffStats) {
        self.grow(other.num_sources());
        for (a, b) in self.cells.iter_mut().zip(&other.cells) {
            *a += b;
        }
    }

    /// Total observation weight across all sources and sides (= claims
    /// accounted for, when weights are posterior probabilities).
    pub fn total(&self) -> f64 {
        self.cells
            .chunks(3)
            .map(|c| c.first().copied().unwrap_or(0.0))
            .sum()
    }

    /// `(n, Σv, Σv²)` for `(s, side)`; zeros outside the table.
    pub fn get(&self, s: SourceId, side: bool) -> (f64, f64, f64) {
        let i = Self::idx(s, side);
        match self.cells.get(i..i + 3) {
            Some(c) => (c[0], c[1], c[2]),
            None => (0.0, 0.0, 0.0),
        }
    }

    #[inline]
    fn idx(s: SourceId, side: bool) -> usize {
        s.index() * REAL_CELLS_PER_SOURCE + side as usize * 3
    }

    /// Adds a weighted observation (soft assignment).
    #[inline]
    pub fn add_weighted(&mut self, s: SourceId, side: bool, weight: f64, v: f64) {
        let i = Self::idx(s, side);
        self.cells[i] += weight;
        self.cells[i + 1] += weight * v;
        self.cells[i + 2] += weight * v * v;
    }

    #[inline]
    fn add(&mut self, s: SourceId, side: bool, v: f64) {
        self.add_weighted(s, side, 1.0, v);
    }

    #[inline]
    fn remove(&mut self, s: SourceId, side: bool, v: f64) {
        let i = Self::idx(s, side);
        self.cells[i] -= 1.0;
        self.cells[i + 1] -= v;
        self.cells[i + 2] -= v * v;
    }

    /// Log posterior-predictive density of `v` for `(s, side)`: the
    /// Student-t implied by the NIG posterior of `prior` updated with the
    /// current sufficient statistics. A source outside the table (or with
    /// zero accumulated weight) falls back to the prior-only predictive.
    pub fn ln_predictive(&self, s: SourceId, side: bool, v: f64, prior: &NigPrior) -> f64 {
        let (n, sum, ssq) = self.get(s, side);
        let (kappa_n, mu_n, a_n, b_n);
        if n > 0.0 {
            let mean = sum / n;
            // Guard tiny negative values from floating-point cancellation.
            let ss = (ssq - sum * sum / n).max(0.0);
            kappa_n = prior.kappa + n;
            mu_n = (prior.kappa * prior.mean + sum) / kappa_n;
            a_n = prior.a + n / 2.0;
            b_n = prior.b
                + 0.5 * ss
                + prior.kappa * n * (mean - prior.mean) * (mean - prior.mean) / (2.0 * kappa_n);
        } else {
            kappa_n = prior.kappa;
            mu_n = prior.mean;
            a_n = prior.a;
            b_n = prior.b;
        }
        // Student-t predictive: df = 2a, loc = μ, scale² = b(κ+1)/(aκ).
        let df = 2.0 * a_n;
        let scale2 = b_n * (kappa_n + 1.0) / (a_n * kappa_n);
        ln_student_t(v, df, mu_n, scale2.sqrt())
    }
}

/// Log-density of the Student-t distribution with `df` degrees of freedom,
/// location `loc`, and scale `scale`.
fn ln_student_t(v: f64, df: f64, loc: f64, scale: f64) -> f64 {
    let z = (v - loc) / scale;
    ln_gamma((df + 1.0) / 2.0)
        - ln_gamma(df / 2.0)
        - 0.5 * (df * std::f64::consts::PI).ln()
        - scale.ln()
        - (df + 1.0) / 2.0 * (1.0 + z * z / df).ln()
}

/// Fits the real-valued Latent Truth Model by collapsed Gibbs sampling.
pub fn fit(db: &RealClaimDb, config: &RealLtmConfig) -> RealLtmFit {
    fit_with_stats(db, config, &RealSuffStats::zeros(0))
}

/// [`fit`] with **base sufficient statistics** carried in from earlier
/// batches: every posterior-predictive evaluation sees `base` on top of
/// the batch's own claims, which is exactly the streaming update of paper
/// §5.4 transplanted to the Gaussian model — the NIG prior is updated
/// with everything already seen, then the new batch is fitted against it.
///
/// `base` is read-only; the returned [`RealLtmFit::expected`] covers only
/// this batch, so the caller accumulates by addition.
pub fn fit_with_stats(
    db: &RealClaimDb,
    config: &RealLtmConfig,
    base: &RealSuffStats,
) -> RealLtmFit {
    assert!(
        config.burn_in < config.iterations,
        "burn_in must be < iterations"
    );
    let mut rng = rng_from_seed(config.seed);
    // Initialise each fact on the side whose prior mean is closer to its
    // average claim value. This plants the chain in the intended mode;
    // together with the κ-weighted side priors it resolves the two-sided
    // label-swap symmetry of the Gaussian model.
    let mut labels: Vec<bool> = (0..db.num_facts())
        .map(|i| {
            let f = FactId::from_usize(i);
            let (mut sum, mut n) = (0.0, 0usize);
            for (_, v) in db.claims_of_fact(f) {
                sum += v;
                n += 1;
            }
            if n == 0 {
                rng.gen::<f64>() < 0.5
            } else {
                let mean = sum / n as f64;
                (mean - config.side1.mean).abs() < (mean - config.side0.mean).abs()
            }
        })
        .collect();

    // The working table starts as a copy of the carried-in statistics;
    // flips only ever add/remove the batch's own claims, so the base
    // contribution stays fixed underneath — the "prior plus accumulated
    // counts" streaming update, by construction.
    let mut stats = base.clone();
    stats.grow(db.num_sources());
    #[allow(clippy::needless_range_loop)] // i is both FactId and label index
    for i in 0..db.num_facts() {
        let f = FactId::from_usize(i);
        for (s, v) in db.claims_of_fact(f) {
            stats.add(s, labels[i], v);
        }
    }

    let mut acc = vec![0.0f64; db.num_facts()];
    let mut samples = 0usize;
    for iter in 1..=config.iterations {
        #[allow(clippy::needless_range_loop)] // i is both FactId and label index
        for i in 0..db.num_facts() {
            let f = FactId::from_usize(i);
            let current = labels[i];
            let proposed = !current;
            // Remove this fact's claims from the current side so both
            // sides are evaluated on "everyone else's" statistics.
            for (s, v) in db.claims_of_fact(f) {
                stats.remove(s, current, v);
            }
            let prior_for = |side: bool| if side { &config.side1 } else { &config.side0 };
            let mut log_odds = (config.beta.count(proposed) / config.beta.count(current)).ln();
            for (s, v) in db.claims_of_fact(f) {
                log_odds += stats.ln_predictive(s, proposed, v, prior_for(proposed))
                    - stats.ln_predictive(s, current, v, prior_for(current));
            }
            let flip = rng.gen::<f64>() < sigmoid(log_odds);
            let new_label = if flip { proposed } else { current };
            labels[i] = new_label;
            for (s, v) in db.claims_of_fact(f) {
                stats.add(s, new_label, v);
            }
        }
        if iter > config.burn_in {
            samples += 1;
            for (a, &t) in acc.iter_mut().zip(&labels) {
                *a += t as u8 as f64;
            }
        }
    }

    let truth = TruthAssignment::new(acc.into_iter().map(|x| x / samples as f64).collect());
    RealLtmFit::from_posterior(db, truth, config)
}

impl RealLtmFit {
    /// Derives the soft (posterior-weighted) sufficient statistics and
    /// per-source side means from a posterior truth assignment — shared
    /// by the single-chain and pooled multi-chain paths.
    fn from_posterior(db: &RealClaimDb, truth: TruthAssignment, config: &RealLtmConfig) -> Self {
        let mut soft = RealSuffStats::zeros(db.num_sources());
        for i in 0..db.num_facts() {
            let f = FactId::from_usize(i);
            let p1 = truth.prob(f);
            for (s, v) in db.claims_of_fact(f) {
                soft.add_weighted(s, true, p1, v);
                soft.add_weighted(s, false, 1.0 - p1, v);
            }
        }
        let side_mean = |s: usize, side: bool, prior: &NigPrior| {
            let (n, sum, _) = soft.get(SourceId::from_usize(s), side);
            (prior.kappa * prior.mean + sum) / (prior.kappa + n)
        };
        let mean_true = (0..db.num_sources())
            .map(|s| side_mean(s, true, &config.side1))
            .collect();
        let mean_false = (0..db.num_sources())
            .map(|s| side_mean(s, false, &config.side0))
            .collect();
        Self {
            truth,
            mean_true,
            mean_false,
            expected: soft,
        }
    }
}

/// A pooled multi-chain real-valued fit with Gelman–Rubin diagnostics —
/// the real-valued analogue of [`crate::MultiChainFit`], consumed by the
/// `ltm-serve` refit daemon's R̂-gated epoch promotion.
#[derive(Debug, Clone)]
pub struct RealMultiChainFit {
    /// The pooled fit (equal-weight mean across chains), including the
    /// posterior-weighted [`RealLtmFit::expected`] statistics.
    pub fit: RealLtmFit,
    /// Per-fact Gelman–Rubin `R̂` across chains.
    pub rhat: Vec<f64>,
    /// Worst per-fact `R̂` (NaN read as `+∞`; 1.0 when there are no facts).
    pub max_rhat: f64,
    /// Fraction of facts with `R̂ ≤ 1.1`.
    pub converged_fraction: f64,
    /// Chains run.
    pub num_chains: usize,
}

/// Fits `num_chains` decorrelated chains in parallel over the same batch
/// and base statistics, pools their posteriors, and computes per-fact
/// `R̂` — see [`fit_with_stats`] for the base-statistics semantics.
///
/// # Panics
///
/// Panics if `num_chains` is zero.
pub fn fit_chains_with_stats(
    db: &RealClaimDb,
    config: &RealLtmConfig,
    base: &RealSuffStats,
    num_chains: usize,
) -> RealMultiChainFit {
    assert!(
        num_chains > 0,
        "fit_chains_with_stats: need at least one chain"
    );
    let chains: Vec<TruthAssignment> = (0..num_chains)
        .into_par_iter()
        .map(|k| {
            let seed = if k == 0 {
                config.seed
            } else {
                derive_seed(config.seed, k as u64)
            };
            fit_with_stats(db, &RealLtmConfig { seed, ..*config }, base).truth
        })
        .collect();
    let mut pooled = vec![0.0f64; db.num_facts()];
    for chain in &chains {
        for (acc, f) in pooled.iter_mut().zip(db.fact_ids()) {
            *acc += chain.prob(f);
        }
    }
    for p in &mut pooled {
        *p /= num_chains as f64;
    }
    let chain_means: Vec<Vec<f64>> = chains
        .iter()
        .map(|c| db.fact_ids().map(|f| c.prob(f)).collect())
        .collect();
    let rhat = rhat_binary_means(&chain_means, config.iterations - config.burn_in);
    let max_rhat = worst_rhat(&rhat);
    let converged_fraction = if rhat.is_empty() {
        1.0
    } else {
        rhat.iter().filter(|&&r| r <= 1.1).count() as f64 / rhat.len() as f64
    };
    RealMultiChainFit {
        fit: RealLtmFit::from_posterior(db, TruthAssignment::new(pooled), config),
        rhat,
        max_rhat,
        converged_fraction,
        num_chains,
    }
}

/// Streaming trainer for the real-valued model — the Gaussian counterpart
/// of [`crate::StreamingLtm`]: each batch is fitted with the NIG priors
/// effectively updated by the soft statistics accumulated from every
/// earlier batch, then its own soft statistics are folded in.
#[derive(Debug, Clone)]
pub struct StreamingRealLtm {
    config: RealLtmConfig,
    cumulative: RealSuffStats,
    batches_seen: usize,
}

impl StreamingRealLtm {
    /// Creates a trainer with the given base configuration.
    pub fn new(config: RealLtmConfig) -> Self {
        Self {
            config,
            cumulative: RealSuffStats::zeros(0),
            batches_seen: 0,
        }
    }

    /// Resumes a trainer from a previously accumulated statistics table
    /// (e.g. restored from an `ltm-serve` snapshot); `batches_seen`
    /// restores the per-batch seed decorrelation counter.
    pub fn from_accumulated(
        config: RealLtmConfig,
        stats: RealSuffStats,
        batches_seen: usize,
    ) -> Self {
        Self {
            config,
            cumulative: stats,
            batches_seen,
        }
    }

    /// Number of batches consumed so far.
    pub fn batches_seen(&self) -> usize {
        self.batches_seen
    }

    /// Replaces the base seed per-batch chain seeds derive from (the
    /// serve-layer refit daemon bumps this on every attempt).
    pub fn set_seed(&mut self, seed: u64) {
        self.config.seed = seed;
    }

    /// The cumulative soft-statistics accumulator — read it out to
    /// persist a trainer and resume via
    /// [`StreamingRealLtm::from_accumulated`].
    pub fn accumulated(&self) -> &RealSuffStats {
        &self.cumulative
    }

    /// The model configuration (NIG priors, `β`, schedule).
    pub fn config(&self) -> &RealLtmConfig {
        &self.config
    }

    /// Rejects batches whose source-id space is smaller than the
    /// accumulated statistics' (see [`StreamError::SourceSpaceShrunk`]).
    fn check_id_space(&self, batch: &RealClaimDb) -> Result<(), StreamError> {
        if batch.num_sources() < self.cumulative.num_sources() {
            return Err(StreamError::SourceSpaceShrunk {
                batch: batch.num_sources(),
                accumulated: self.cumulative.num_sources(),
            });
        }
        Ok(())
    }

    /// The configuration for the next batch fit (seed decorrelated across
    /// batches, reproducibly).
    fn batch_config(&self) -> RealLtmConfig {
        RealLtmConfig {
            seed: self.config.seed.wrapping_add(self.batches_seen as u64),
            ..self.config
        }
    }

    /// Fits one batch under the accumulated statistics, then folds the
    /// batch's soft statistics into the accumulator. On error the
    /// accumulated state is left untouched.
    pub fn try_observe(&mut self, batch: &RealClaimDb) -> Result<RealLtmFit, StreamError> {
        self.check_id_space(batch)?;
        let fit = fit_with_stats(batch, &self.batch_config(), &self.cumulative);
        self.fold(&fit.expected);
        Ok(fit)
    }

    /// Fits one batch with `num_chains` parallel chains (pooled
    /// posterior plus `R̂` diagnostics) under the accumulated statistics,
    /// then folds the pooled soft statistics in — the `ltm-serve` refit
    /// path for real-valued domains.
    pub fn try_observe_chains(
        &mut self,
        batch: &RealClaimDb,
        num_chains: usize,
    ) -> Result<RealMultiChainFit, StreamError> {
        self.check_id_space(batch)?;
        let multi =
            fit_chains_with_stats(batch, &self.batch_config(), &self.cumulative, num_chains);
        self.fold(&multi.fit.expected);
        Ok(multi)
    }

    fn fold(&mut self, expected: &RealSuffStats) {
        self.cumulative.add_assign(expected);
        self.batches_seen += 1;
    }

    /// Exports a closed-form predictor over the current accumulated
    /// statistics (the real-valued Equation-3 analogue).
    pub fn predictor(&self) -> IncrementalRealLtm {
        IncrementalRealLtm::new(&self.config, self.cumulative.clone())
    }
}

/// Closed-form truth predictor for real-valued claims — the Gaussian
/// analogue of [`crate::IncrementalLtm`] (paper §5.4 / §7): with source
/// observation behaviour summarised by accumulated sufficient statistics,
/// a new fact's posterior is one Student-t evaluation per claim and side,
/// no sampling.
///
/// ```text
/// p(t_f = 1 | v, s) ∝ β₁ Π_c  t(v_c; NIG₁(s_c) posterior)
/// p(t_f = 0 | v, s) ∝ β₀ Π_c  t(v_c; NIG₀(s_c) posterior)
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct IncrementalRealLtm {
    side0: NigPrior,
    side1: NigPrior,
    beta: BetaPair,
    stats: RealSuffStats,
}

impl IncrementalRealLtm {
    /// Builds a predictor from a model configuration (NIG priors + `β`)
    /// and accumulated per-source statistics.
    pub fn new(config: &RealLtmConfig, stats: RealSuffStats) -> Self {
        Self {
            side0: config.side0,
            side1: config.side1,
            beta: config.beta,
            stats,
        }
    }

    /// Rebuilds a predictor from previously exported parameters — the
    /// snapshot-restore path of `ltm-serve`.
    pub fn from_parts(
        side0: NigPrior,
        side1: NigPrior,
        beta: BetaPair,
        stats: RealSuffStats,
    ) -> Self {
        Self {
            side0,
            side1,
            beta,
            stats,
        }
    }

    /// The accumulated per-source statistics backing the predictor.
    pub fn stats(&self) -> &RealSuffStats {
        &self.stats
    }

    /// The `(side0, side1)` NIG priors in use.
    pub fn priors(&self) -> (NigPrior, NigPrior) {
        (self.side0, self.side1)
    }

    /// The `β` prior in use.
    pub fn beta(&self) -> BetaPair {
        self.beta
    }

    /// Posterior truth probability of a fact given `(source, value)`
    /// claims. Sources outside the learned statistics fall back to the
    /// prior-only predictive; an empty claim list yields the `β` prior
    /// mean.
    pub fn predict_fact(&self, claims: &[(SourceId, f64)]) -> f64 {
        let mut log_odds = (self.beta.pos / self.beta.neg).ln();
        for &(s, v) in claims {
            log_odds += self.stats.ln_predictive(s, true, v, &self.side1)
                - self.stats.ln_predictive(s, false, v, &self.side0);
        }
        sigmoid(log_odds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic real-valued data: `n` facts alternating true/false; each
    /// of `k` sources scores every fact — near `hi` for true facts, near
    /// `lo` for false ones, with Gaussian-ish noise from a seeded RNG.
    fn two_cluster_db(
        n: usize,
        k: usize,
        hi: f64,
        lo: f64,
        noise: f64,
        seed: u64,
    ) -> (RealClaimDb, Vec<bool>) {
        let mut rng = rng_from_seed(seed);
        let truth: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        let mut claims = Vec::new();
        for (i, &t) in truth.iter().enumerate() {
            for s in 0..k {
                // Box–Muller normal.
                let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                let u2: f64 = rng.gen();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let center = if t { hi } else { lo };
                claims.push(RealClaim {
                    fact: FactId::from_usize(i),
                    source: SourceId::from_usize(s),
                    value: center + noise * z,
                });
            }
        }
        (RealClaimDb::new(n, k, claims), truth)
    }

    #[test]
    fn recovers_two_clusters() {
        let (db, truth) = two_cluster_db(200, 4, 0.9, 0.2, 0.08, 5);
        let fit = fit(&db, &RealLtmConfig::default());
        let correct = (0..200)
            .filter(|&i| (fit.truth.prob(FactId::from_usize(i)) >= 0.5) == truth[i])
            .count();
        assert!(correct >= 195, "correct = {correct}/200");
    }

    #[test]
    fn side_means_recovered() {
        let (db, _) = two_cluster_db(300, 3, 0.9, 0.2, 0.05, 6);
        let fit = fit(&db, &RealLtmConfig::default());
        for s in 0..3 {
            assert!(
                (fit.mean_true[s] - 0.9).abs() < 0.05,
                "mean_true[{s}] = {}",
                fit.mean_true[s]
            );
            assert!(
                (fit.mean_false[s] - 0.2).abs() < 0.05,
                "mean_false[{s}] = {}",
                fit.mean_false[s]
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (db, _) = two_cluster_db(50, 3, 0.8, 0.3, 0.1, 7);
        let cfg = RealLtmConfig::default();
        assert_eq!(fit(&db, &cfg).truth, fit(&db, &cfg).truth);
    }

    #[test]
    fn overlapping_clusters_yield_uncertainty() {
        // With heavy noise the posterior should hedge: not all facts at
        // 0/1.
        let (db, _) = two_cluster_db(100, 2, 0.6, 0.4, 0.3, 8);
        let f = fit(&db, &RealLtmConfig::default());
        let uncertain = (0..100)
            .filter(|&i| {
                let p = f.truth.prob(FactId::from_usize(i));
                p > 0.05 && p < 0.95
            })
            .count();
        assert!(uncertain > 10, "uncertain = {uncertain}");
    }

    #[test]
    fn ln_student_t_is_normalized_enough() {
        // Crude integration check over a wide grid.
        let mut acc = 0.0;
        let (df, loc, scale) = (5.0, 0.3, 0.7);
        let n = 40_000;
        for i in 0..n {
            let v = -20.0 + 40.0 * (i as f64 + 0.5) / n as f64;
            acc += ln_student_t(v, df, loc, scale).exp() * 40.0 / n as f64;
        }
        assert!((acc - 1.0).abs() < 1e-3, "integral = {acc}");
    }

    #[test]
    #[should_panic(expected = "duplicate claim")]
    fn rejects_duplicate_claims() {
        let claims = vec![
            RealClaim {
                fact: FactId::new(0),
                source: SourceId::new(0),
                value: 0.5,
            },
            RealClaim {
                fact: FactId::new(0),
                source: SourceId::new(0),
                value: 0.6,
            },
        ];
        RealClaimDb::new(1, 1, claims);
    }

    #[test]
    fn empty_database_fit() {
        let db = RealClaimDb::new(0, 0, vec![]);
        let f = fit(&db, &RealLtmConfig::default());
        assert!(f.truth.is_empty());
        assert_eq!(f.expected.num_sources(), 0);
    }

    #[test]
    fn expected_stats_account_for_every_claim() {
        let (db, _) = two_cluster_db(60, 3, 0.9, 0.2, 0.05, 11);
        let f = fit(&db, &RealLtmConfig::default());
        // Soft weights per claim sum to 1 (p + (1−p)), so the total
        // weight equals the claim count exactly.
        assert!(
            (f.expected.total() - db.num_claims() as f64).abs() < 1e-6,
            "expected covers {} of {} claims",
            f.expected.total(),
            db.num_claims()
        );
    }

    #[test]
    fn suffstats_cells_round_trip_and_grow() {
        let mut s = RealSuffStats::zeros(1);
        s.add_weighted(SourceId::new(0), true, 0.7, 0.9);
        s.add_weighted(SourceId::new(0), false, 0.3, 0.9);
        let rebuilt = RealSuffStats::from_cells(s.cells().to_vec());
        assert_eq!(rebuilt, s);
        let mut grown = rebuilt.clone();
        grown.grow(3);
        assert_eq!(grown.num_sources(), 3);
        assert_eq!(
            grown.get(SourceId::new(0), true),
            s.get(SourceId::new(0), true)
        );
        assert_eq!(grown.get(SourceId::new(2), true), (0.0, 0.0, 0.0));
        // Out-of-range reads fall back to zeros rather than panicking.
        assert_eq!(grown.get(SourceId::new(9), false), (0.0, 0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "blocks of 6")]
    fn suffstats_rejects_ragged_cells() {
        RealSuffStats::from_cells(vec![0.0; 5]);
    }

    #[test]
    fn streaming_accumulates_and_resumes_bit_identically() {
        let (batch1, _) = two_cluster_db(40, 3, 0.9, 0.2, 0.06, 21);
        let (batch2, _) = two_cluster_db(40, 3, 0.9, 0.2, 0.06, 22);
        let cfg = RealLtmConfig::default();

        let mut reference = StreamingRealLtm::new(cfg);
        reference.try_observe(&batch1).unwrap();
        let saved = reference.accumulated().cells().to_vec();
        let saved_batches = reference.batches_seen();
        reference.try_observe(&batch2).unwrap();

        let mut resumed = StreamingRealLtm::from_accumulated(
            cfg,
            RealSuffStats::from_cells(saved),
            saved_batches,
        );
        resumed.try_observe(&batch2).unwrap();
        assert_eq!(resumed.batches_seen(), reference.batches_seen());
        assert_eq!(resumed.accumulated(), reference.accumulated());
        let claims = [(SourceId::new(0), 0.88), (SourceId::new(1), 0.15)];
        assert_eq!(
            resumed.predictor().predict_fact(&claims),
            reference.predictor().predict_fact(&claims),
            "resumed trainer must predict bit-identically"
        );
    }

    #[test]
    fn streaming_rejects_shrunken_source_space() {
        let (wide, _) = two_cluster_db(20, 3, 0.9, 0.2, 0.06, 23);
        let (narrow, _) = two_cluster_db(20, 2, 0.9, 0.2, 0.06, 24);
        let mut s = StreamingRealLtm::new(RealLtmConfig::default());
        s.try_observe(&wide).unwrap();
        let before = s.accumulated().clone();
        let err = s.try_observe(&narrow).unwrap_err();
        assert_eq!(
            err,
            StreamError::SourceSpaceShrunk {
                batch: 2,
                accumulated: 3
            }
        );
        assert_eq!(s.accumulated(), &before, "rejected batch folds nothing");
        assert_eq!(s.batches_seen(), 1);
    }

    #[test]
    fn chains_pool_and_diagnose() {
        let (db, truth) = two_cluster_db(100, 4, 0.9, 0.2, 0.06, 25);
        let mut s = StreamingRealLtm::new(RealLtmConfig::default());
        let multi = s.try_observe_chains(&db, 3).unwrap();
        assert_eq!(multi.num_chains, 3);
        assert_eq!(multi.rhat.len(), db.num_facts());
        assert!(multi.max_rhat.is_finite(), "rhat = {}", multi.max_rhat);
        assert!(multi.converged_fraction > 0.8);
        let correct = (0..100)
            .filter(|&i| (multi.fit.truth.prob(FactId::from_usize(i)) >= 0.5) == truth[i])
            .count();
        assert!(correct >= 95, "pooled fit correct = {correct}/100");
        assert_eq!(s.batches_seen(), 1);
    }

    #[test]
    fn incremental_predictor_separates_learned_sides() {
        // After streaming over well-separated clusters, a high-valued
        // claim from a learned source should score far above a low one.
        let (db, _) = two_cluster_db(200, 3, 0.9, 0.2, 0.05, 26);
        let mut s = StreamingRealLtm::new(RealLtmConfig::default());
        s.try_observe(&db).unwrap();
        let p = s.predictor();
        let hi = p.predict_fact(&[(SourceId::new(0), 0.9)]);
        let lo = p.predict_fact(&[(SourceId::new(0), 0.2)]);
        assert!(hi > 0.9, "high-valued claim: {hi}");
        assert!(lo < 0.1, "low-valued claim: {lo}");
        // Unknown sources fall back to the prior-only predictive and
        // still pull in the right direction.
        let hi_unknown = p.predict_fact(&[(SourceId::new(99), 0.85)]);
        let lo_unknown = p.predict_fact(&[(SourceId::new(99), 0.25)]);
        assert!(hi_unknown > lo_unknown);
        // An empty claim list yields the β prior mean.
        let b = RealLtmConfig::default().beta;
        assert!((p.predict_fact(&[]) - b.mean()).abs() < 1e-12);
    }

    #[test]
    fn incremental_predictor_round_trips_from_parts() {
        let (db, _) = two_cluster_db(50, 2, 0.9, 0.2, 0.06, 27);
        let mut s = StreamingRealLtm::new(RealLtmConfig::default());
        s.try_observe(&db).unwrap();
        let p = s.predictor();
        let rebuilt = IncrementalRealLtm::from_parts(
            p.priors().0,
            p.priors().1,
            p.beta(),
            RealSuffStats::from_cells(p.stats().cells().to_vec()),
        );
        let claims = [(SourceId::new(0), 0.7), (SourceId::new(1), 0.3)];
        assert_eq!(rebuilt.predict_fact(&claims), p.predict_fact(&claims));
    }
}
