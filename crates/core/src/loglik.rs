//! Likelihood computations (paper Section 5.1 and Appendix A).
//!
//! With the quality parameters and fact priors integrated out, a complete
//! truth assignment `t` has collapsed log-joint
//!
//! ```text
//! ln p(o, t) = Σ_f ln β_{t_f} − F·ln(β₁+β₀)
//!            + Σ_s Σ_i [ ln B(n_{s,i,1}+α_{i,1}, n_{s,i,0}+α_{i,0}) − ln B(α_{i,1}, α_{i,0}) ]
//! ```
//!
//! This module exposes that quantity for diagnostics: tracking it across
//! Gibbs iterations gives a convergence monitor (it rises to a plateau as
//! the chain finds its mode), and comparing assignments gives a principled
//! way to rank candidate truth labelings. The exact-enumeration oracle in
//! [`crate::exact`] sums the same quantity over all `2^F` assignments.

use ltm_model::ClaimDb;
use ltm_stats::special::ln_beta;

use crate::counts::GibbsCounts;
use crate::priors::{Priors, SourcePriors};

/// Collapsed log-joint `ln p(o, t)` (up to the constant `−F·ln(β₁+β₀)`,
/// which cancels in all comparisons between assignments of the same
/// database).
pub fn collapsed_log_joint(db: &ClaimDb, labels: &[bool], priors: &Priors) -> f64 {
    let sp = SourcePriors::uniform(*priors, db.num_sources());
    collapsed_log_joint_with_source_priors(db, labels, &sp)
}

/// Collapsed log-joint with per-source priors (streaming / multi-type
/// settings).
///
/// # Panics
///
/// Panics unless `labels` has one entry per fact.
pub fn collapsed_log_joint_with_source_priors(
    db: &ClaimDb,
    labels: &[bool],
    priors: &SourcePriors,
) -> f64 {
    assert_eq!(labels.len(), db.num_facts(), "one label per fact required");
    let counts = GibbsCounts::from_labels(db, labels);
    let beta = priors.base.beta;
    let mut ln_joint = 0.0;
    for &l in labels {
        ln_joint += beta.count(l).ln();
    }
    for s in db.source_ids() {
        let a0 = priors.alpha0_for(s.index());
        let a1 = priors.alpha1_for(s.index());
        let fp = counts.get(s, false, true) as f64;
        let tn = counts.get(s, false, false) as f64;
        let tp = counts.get(s, true, true) as f64;
        let fneg = counts.get(s, true, false) as f64;
        ln_joint += ln_beta(fp + a0.pos, tn + a0.neg) - ln_beta(a0.pos, a0.neg);
        ln_joint += ln_beta(tp + a1.pos, fneg + a1.neg) - ln_beta(a1.pos, a1.neg);
    }
    ln_joint
}

/// Per-iteration log-joint trace of a dedicated diagnostic chain.
///
/// Runs a fresh sampler with `config` and records `ln p(o, t)` after every
/// iteration. This duplicates the sampling work (the production sampler
/// does not pay for likelihood evaluation), so it is intended for
/// convergence studies, not production fits.
pub fn log_joint_trace(
    db: &ClaimDb,
    config: &crate::gibbs::LtmConfig,
    iterations: usize,
) -> Vec<f64> {
    use ltm_stats::rng::rng_from_seed;
    use rand::Rng;

    let priors = SourcePriors::uniform(config.priors, db.num_sources());
    let mut rng = rng_from_seed(config.seed);
    let mut labels: Vec<bool> = (0..db.num_facts())
        .map(|_| rng.gen::<f64>() < 0.5)
        .collect();
    let mut trace = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        // One sweep of the same conditional updates the production sampler
        // makes, re-using its public probability computation through a
        // minimal reimplementation (counts are rebuilt per sweep here;
        // diagnostics need not be fast).
        let mut counts = GibbsCounts::from_labels(db, &labels);
        for f in db.fact_ids() {
            let current = labels[f.index()];
            let proposed = !current;
            let beta = config.priors.beta;
            let mut log_odds = (beta.count(proposed) / beta.count(current)).ln();
            for (s, o) in db.claims_of_fact(f) {
                let a_cur = if current {
                    priors.alpha1_for(s.index())
                } else {
                    priors.alpha0_for(s.index())
                };
                let a_pro = if proposed {
                    priors.alpha1_for(s.index())
                } else {
                    priors.alpha0_for(s.index())
                };
                // f64 subtraction (exact below 2⁵³) — same hardening as the
                // production kernels: a bookkeeping bug must not wrap a u32.
                debug_assert!(
                    counts.get(s, current, o) > 0,
                    "fact {f}: claim ({s}, {o}) not reflected in counts"
                );
                let num_cur = counts.get(s, current, o) as f64 - 1.0 + a_cur.count(o);
                let den_cur = counts.label_total(s, current) as f64 - 1.0 + a_cur.strength();
                let num_pro = counts.get(s, proposed, o) as f64 + a_pro.count(o);
                let den_pro = counts.label_total(s, proposed) as f64 + a_pro.strength();
                log_odds += (num_pro / den_pro).ln() - (num_cur / den_cur).ln();
            }
            if rng.gen::<f64>() < ltm_stats::special::sigmoid(log_odds) {
                labels[f.index()] = proposed;
                for (s, o) in db.claims_of_fact(f) {
                    counts.flip(s, current, o);
                }
            }
        }
        trace.push(collapsed_log_joint_with_source_priors(db, &labels, &priors));
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gibbs::{LtmConfig, SampleSchedule};
    use crate::priors::BetaPair;
    use ltm_model::{AttrId, Claim, EntityId, Fact, FactId, SourceId};

    fn priors() -> Priors {
        Priors {
            alpha0: BetaPair::new(1.0, 9.0),
            alpha1: BetaPair::new(4.0, 2.0),
            beta: BetaPair::new(2.0, 2.0),
        }
    }

    fn small_db() -> ClaimDb {
        let facts: Vec<Fact> = (0..4)
            .map(|i| Fact {
                entity: EntityId::new(i),
                attr: AttrId::new(i),
            })
            .collect();
        let mut claims = Vec::new();
        for f in 0..4u32 {
            for s in 0..3u32 {
                claims.push(Claim {
                    fact: FactId::new(f),
                    source: SourceId::new(s),
                    // Facts 0, 1 widely asserted; 2, 3 widely denied.
                    observation: f < 2 || s == 0,
                });
            }
        }
        ClaimDb::from_parts(facts, claims, 3)
    }

    #[test]
    fn consistent_assignment_scores_higher() {
        let db = small_db();
        let p = priors();
        let consistent = collapsed_log_joint(&db, &[true, true, false, false], &p);
        let inverted = collapsed_log_joint(&db, &[false, false, true, true], &p);
        assert!(
            consistent > inverted,
            "consistent {consistent} vs inverted {inverted}"
        );
    }

    #[test]
    fn matches_exact_oracle_normalisation() {
        // exp(log-joint) summed over all assignments must reproduce the
        // exact marginals.
        let db = small_db();
        let p = priors();
        let f = db.num_facts();
        let mut total = 0.0;
        let mut marg = vec![0.0; f];
        let mut max = f64::NEG_INFINITY;
        let mut joints = Vec::new();
        for mask in 0u32..(1 << f) {
            let labels: Vec<bool> = (0..f).map(|i| (mask >> i) & 1 == 1).collect();
            let lj = collapsed_log_joint(&db, &labels, &p);
            max = max.max(lj);
            joints.push((mask, lj));
        }
        for &(mask, lj) in &joints {
            let w = (lj - max).exp();
            total += w;
            for (i, m) in marg.iter_mut().enumerate() {
                if (mask >> i) & 1 == 1 {
                    *m += w;
                }
            }
        }
        let exact = crate::exact::posterior(&db, &p);
        for (i, &m) in marg.iter().enumerate() {
            assert!(
                (m / total - exact.prob(FactId::from_usize(i))).abs() < 1e-9,
                "fact {i}"
            );
        }
    }

    #[test]
    fn trace_rises_to_plateau() {
        let db = small_db();
        let cfg = LtmConfig {
            priors: priors(),
            schedule: SampleSchedule::new(50, 10, 0),
            seed: 3,
            arithmetic: Default::default(),
        };
        let trace = log_joint_trace(&db, &cfg, 50);
        assert_eq!(trace.len(), 50);
        // The late-chain mean log-joint should not be below the early-chain
        // mean (the chain moves towards high-probability assignments).
        let early: f64 = trace[..10].iter().sum::<f64>() / 10.0;
        let late: f64 = trace[40..].iter().sum::<f64>() / 10.0;
        assert!(late >= early - 1e-9, "early {early} late {late}");
    }

    #[test]
    #[should_panic(expected = "one label per fact")]
    fn wrong_label_count_rejected() {
        collapsed_log_joint(&small_db(), &[true], &priors());
    }
}
