//! Collapsed Gibbs sampling for the Latent Truth Model
//! (paper Section 5.2, Algorithm 1).
//!
//! The sampler iteratively resamples each fact's truth label from its
//! conditional distribution given all other labels (paper Equation 2):
//!
//! ```text
//! p(t_f = i | t_−f, o, s) ∝ β_i · Π_{c ∈ C_f}
//!     (n⁻ᶠ_{s_c,i,o_c} + α_{i,o_c}) /
//!     (n⁻ᶠ_{s_c,i,1} + n⁻ᶠ_{s_c,i,0} + α_{i,1} + α_{i,0})
//! ```
//!
//! where `n⁻ᶠ` are the per-source confusion counts excluding fact `f`'s own
//! claims. The source-quality parameters `φ⁰, φ¹` and the per-fact prior
//! `θ_f` are integrated out thanks to Beta–Bernoulli conjugacy, so only the
//! truth labels are sampled — one Boolean per fact — giving the linear
//! `O(|C|)` per-iteration cost the paper reports.
//!
//! Deviations from the paper's pseudo-code are documented in DESIGN.md §5:
//! by default the per-claim ratios accumulate in log-space and the flip
//! probability is a stable sigmoid of the log-odds (identical results,
//! immune to underflow on high-degree facts); the direct product of
//! Algorithm 1 is available as [`Arithmetic::Direct`] for the parity
//! ablation.
//!
//! The default [`Arithmetic::CachedLog`] kernel additionally exploits that
//! the per-claim log-ratio `ln((n_{s,i,o}+α)/(n_{s,i,·}+α_·))` depends only
//! on source `s`'s current counts: each source keeps a lazily-invalidated
//! 4-entry table of per-claim log-odds deltas (indexed by current label ×
//! observation), so the inner loop is one table lookup per claim plus one
//! sigmoid per fact. The table is recomputed on first use after any flip
//! touches the source. The cached kernel is bit-identical to
//! [`Arithmetic::LogSpace`] — same floating-point expressions evaluated in
//! the same order — which the `cached_kernel_bit_identical_*` tests and the
//! `kernel_parity` integration test enforce.

use ltm_model::{ClaimDb, TruthAssignment};
use ltm_stats::rng::{derive_seed, rng_from_seed, WorkspaceRng};
use ltm_stats::special::sigmoid;
use rand::Rng;
use rayon::prelude::*;

use crate::counts::{ExpectedCounts, GibbsCounts};
use crate::priors::{BetaPair, Priors, SourcePriors};
use crate::quality::SourceQuality;

/// How the per-claim conditional ratios are accumulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Arithmetic {
    /// Log-space accumulation through per-source cached log-ratio tables.
    /// Default — bit-identical to [`Arithmetic::LogSpace`], several times
    /// faster (no `ln` in the steady-state inner loop).
    #[default]
    CachedLog,
    /// Accumulate `ln` of each ratio; flip with `σ(Δ log-odds)` —
    /// numerically safe for facts with hundreds of claims. The reference
    /// kernel the cache is validated against.
    LogSpace,
    /// Multiply raw ratios exactly as written in Algorithm 1.
    Direct,
}

/// When samples are taken: total iterations, burn-in, and thinning gap.
///
/// After `burn_in` iterations, every `(sample_gap + 1)`-th iteration
/// contributes a sample, up to `iterations` total — matching the schedules
/// enumerated in the paper's convergence experiment (§6.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleSchedule {
    /// Total Gibbs iterations to run.
    pub iterations: usize,
    /// Iterations discarded before sampling starts.
    pub burn_in: usize,
    /// Iterations skipped between consecutive samples (0 = keep all).
    pub sample_gap: usize,
}

impl SampleSchedule {
    /// Creates a schedule.
    ///
    /// # Panics
    ///
    /// Panics unless the schedule produces at least one sample: `burn_in`
    /// must be `< iterations`, and the post-burn-in stretch must fit one
    /// full thinning gap (`iterations − burn_in ≥ sample_gap + 1`) —
    /// otherwise the posterior mean would be a silent 0/0.
    pub fn new(iterations: usize, burn_in: usize, sample_gap: usize) -> Self {
        assert!(
            burn_in < iterations,
            "SampleSchedule: burn_in ({burn_in}) must be < iterations ({iterations})"
        );
        assert!(
            iterations - burn_in > sample_gap,
            "SampleSchedule: no sample fits — iterations ({iterations}) − burn_in ({burn_in}) \
             must be ≥ sample_gap + 1 ({})",
            sample_gap + 1
        );
        Self {
            iterations,
            burn_in,
            sample_gap,
        }
    }

    /// The paper's default experimental schedule: 100 iterations, burn-in
    /// 20, sample gap 4.
    pub fn paper_default() -> Self {
        Self::new(100, 20, 4)
    }

    /// Whether iteration `iter` (1-based) contributes a sample.
    #[inline]
    fn samples_at(&self, iter: usize) -> bool {
        iter > self.burn_in
            && iter <= self.iterations
            && (iter - self.burn_in).is_multiple_of(self.sample_gap + 1)
    }

    /// Number of samples the schedule will collect.
    pub fn num_samples(&self) -> usize {
        (self.iterations - self.burn_in) / (self.sample_gap + 1)
    }
}

impl Default for SampleSchedule {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Full configuration of an LTM fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LtmConfig {
    /// Prior hyperparameters.
    pub priors: Priors,
    /// Iteration/burn-in/thinning schedule.
    pub schedule: SampleSchedule,
    /// Seed for the sampler's RNG (initial labels + flips).
    pub seed: u64,
    /// Ratio-accumulation arithmetic.
    pub arithmetic: Arithmetic,
}

impl LtmConfig {
    /// Default configuration with priors scaled to `num_facts`
    /// (see [`Priors::scaled_specificity`]).
    pub fn scaled_for(num_facts: usize) -> Self {
        Self {
            priors: Priors::scaled_specificity(num_facts),
            ..Self::default()
        }
    }
}

impl Default for LtmConfig {
    fn default() -> Self {
        Self {
            priors: Priors::default(),
            schedule: SampleSchedule::default(),
            seed: 42,
            arithmetic: Arithmetic::default(),
        }
    }
}

/// Diagnostics recorded during sampling.
#[derive(Debug, Clone, PartialEq)]
pub struct FitDiagnostics {
    /// Iterations actually run.
    pub iterations: usize,
    /// Samples collected for the (primary) schedule.
    pub samples: usize,
    /// Number of label flips in each iteration — a cheap mixing indicator:
    /// it starts high and settles once the chain reaches its mode.
    pub flips_per_iteration: Vec<u32>,
    /// Times the [`Arithmetic::Direct`] kernel's numerator *and*
    /// denominator products both underflowed to zero and the sampler fell
    /// back to a fair coin. Always zero for the log-space kernels; a
    /// non-zero value means the direct arithmetic silently degraded and the
    /// run should be repeated with [`Arithmetic::LogSpace`] or
    /// [`Arithmetic::CachedLog`].
    pub degenerate_flips: u64,
}

/// The result of fitting the Latent Truth Model.
#[derive(Debug, Clone)]
pub struct LtmFit {
    /// Posterior probability of truth per fact (`p(t_f = 1)` estimated by
    /// the post-burn-in sample mean).
    pub truth: TruthAssignment,
    /// Two-sided source quality derived from the posterior (paper §5.3).
    pub quality: SourceQuality,
    /// Expected per-source confusion counts (the sufficient statistics for
    /// incremental / streaming retraining, paper §5.4).
    pub expected_counts: ExpectedCounts,
    /// Sampler diagnostics.
    pub diagnostics: FitDiagnostics,
}

/// Fits the Latent Truth Model on `db`.
pub fn fit(db: &ClaimDb, config: &LtmConfig) -> LtmFit {
    let priors = SourcePriors::uniform(config.priors, db.num_sources());
    fit_with_source_priors(db, config, &priors)
}

/// Fits the model with per-source prior overrides — the entry point used
/// by incremental/streaming training, where each source's learned quality
/// counts are folded into its prior (paper §5.4).
pub fn fit_with_source_priors(
    db: &ClaimDb,
    config: &LtmConfig,
    source_priors: &SourcePriors,
) -> LtmFit {
    let (mut assignments, diagnostics) = run_chain(
        db,
        config,
        source_priors,
        std::slice::from_ref(&config.schedule),
    );
    let truth = assignments.pop().expect("one schedule yields one result");
    let expected_counts = ExpectedCounts::from_posterior(db, &truth);
    let quality = SourceQuality::from_expected_counts(&expected_counts, source_priors);
    LtmFit {
        truth,
        quality,
        expected_counts,
        diagnostics,
    }
}

/// Runs a single chain and reports the posterior estimate under several
/// sampling schedules at once (all schedules share the same trajectory, as
/// in the paper's convergence study, which makes "7 sequential predictions
/// in the same run").
///
/// # Panics
///
/// Panics if `schedules` is empty.
pub fn fit_with_schedules(
    db: &ClaimDb,
    config: &LtmConfig,
    schedules: &[SampleSchedule],
) -> Vec<TruthAssignment> {
    assert!(!schedules.is_empty(), "need at least one schedule");
    let priors = SourcePriors::uniform(config.priors, db.num_sources());
    run_chain(db, config, &priors, schedules).0
}

/// Convergence diagnostics across the chains of a [`fit_chains`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainDiagnostics {
    /// Chains run.
    pub num_chains: usize,
    /// Per-fact potential scale reduction `R̂` (Gelman–Rubin). Values near
    /// 1 mean the chains agree; the conventional threshold is `R̂ ≤ 1.1`.
    /// Reported as 1 when undefined (fewer than two chains or samples).
    pub rhat: Vec<f64>,
    /// Largest per-fact `R̂` (1 for an empty fact table).
    pub max_rhat: f64,
    /// Mean per-fact `R̂` (1 for an empty fact table).
    pub mean_rhat: f64,
    /// Fraction of facts with `R̂ ≤ 1.1` (1 for an empty fact table).
    pub converged_fraction: f64,
    /// The single-chain diagnostics of every chain, in chain order.
    pub per_chain: Vec<FitDiagnostics>,
}

/// The result of a multi-chain fit ([`fit_chains`]).
#[derive(Debug, Clone)]
pub struct MultiChainFit {
    /// Posterior truth pooled across chains (equal-weight mean — every
    /// chain collects the same number of samples).
    pub truth: TruthAssignment,
    /// Source quality derived from the pooled posterior.
    pub quality: SourceQuality,
    /// Expected confusion counts under the pooled posterior.
    pub expected_counts: ExpectedCounts,
    /// Each chain's own posterior estimate, in chain order (chain 0 uses
    /// `config.seed` verbatim, so it reproduces the single-chain [`fit`]).
    pub per_chain_truth: Vec<TruthAssignment>,
    /// Cross-chain convergence diagnostics.
    pub diagnostics: ChainDiagnostics,
}

/// Fits the model by running `num_chains` independent Gibbs chains in
/// parallel (rayon) and pooling their posterior means — the classic
/// variance-reduction / convergence-checking device for MCMC. Chain `k`
/// is seeded with `derive_seed(config.seed, k)` (chain 0 keeps
/// `config.seed`, so `fit_chains(db, cfg, 1)` reproduces `fit(db, cfg)`),
/// which makes the result independent of scheduling order.
///
/// # Panics
///
/// Panics if `num_chains` is zero.
pub fn fit_chains(db: &ClaimDb, config: &LtmConfig, num_chains: usize) -> MultiChainFit {
    let priors = SourcePriors::uniform(config.priors, db.num_sources());
    fit_chains_with_source_priors(db, config, &priors, num_chains)
}

/// [`fit_chains`] with per-source prior overrides.
///
/// # Panics
///
/// Panics if `num_chains` is zero.
pub fn fit_chains_with_source_priors(
    db: &ClaimDb,
    config: &LtmConfig,
    source_priors: &SourcePriors,
    num_chains: usize,
) -> MultiChainFit {
    assert!(num_chains > 0, "fit_chains: need at least one chain");
    let runs: Vec<(TruthAssignment, FitDiagnostics)> = (0..num_chains)
        .into_par_iter()
        .map(|k| {
            let seed = if k == 0 {
                config.seed
            } else {
                derive_seed(config.seed, k as u64)
            };
            let chain_config = LtmConfig { seed, ..*config };
            let (mut assignments, diagnostics) = run_chain(
                db,
                &chain_config,
                source_priors,
                std::slice::from_ref(&chain_config.schedule),
            );
            let truth = assignments.pop().expect("one schedule yields one result");
            (truth, diagnostics)
        })
        .collect();

    let (per_chain_truth, per_chain): (Vec<_>, Vec<_>) = runs.into_iter().unzip();

    // Pool: equal-weight mean across chains.
    let num_facts = db.num_facts();
    let mut pooled = vec![0.0; num_facts];
    for truth in &per_chain_truth {
        for (acc, f) in pooled.iter_mut().zip(db.fact_ids()) {
            *acc += truth.prob(f);
        }
    }
    for p in &mut pooled {
        *p /= num_chains as f64;
    }
    let truth = TruthAssignment::new(pooled);

    let rhat = potential_scale_reduction(&per_chain_truth, db, config.schedule.num_samples());
    let max_rhat = worst_rhat(&rhat);
    let mean_rhat = if rhat.is_empty() {
        1.0
    } else {
        rhat.iter().sum::<f64>() / rhat.len() as f64
    };
    let converged_fraction = if rhat.is_empty() {
        1.0
    } else {
        rhat.iter().filter(|&&r| r <= 1.1).count() as f64 / rhat.len() as f64
    };

    let expected_counts = ExpectedCounts::from_posterior(db, &truth);
    let quality = SourceQuality::from_expected_counts(&expected_counts, source_priors);
    MultiChainFit {
        truth,
        quality,
        expected_counts,
        per_chain_truth,
        diagnostics: ChainDiagnostics {
            num_chains,
            rhat,
            max_rhat,
            mean_rhat,
            converged_fraction,
            per_chain,
        },
    }
}

/// The worst (largest) entry of a per-fact `R̂` list, with any NaN mapped
/// to `+∞` before comparison. A NaN diagnostic comes from a degenerate
/// chain (zero-variance arithmetic gone wrong) and must read as "not
/// converged"; a plain `f64::max` fold silently *discards* NaN — its
/// contract keeps the other operand — so a fit whose only pathological
/// fact reports NaN would sail through any `max_rhat <= gate` check.
/// Returns 1.0 for an empty list (no facts: vacuously converged).
pub fn worst_rhat(rhat: &[f64]) -> f64 {
    if rhat.is_empty() {
        return 1.0;
    }
    rhat.iter()
        .map(|&r| if r.is_nan() { f64::INFINITY } else { r })
        // analyzer: allow(forbidden-api) -- NaN is mapped to +inf on the line above, so the fold can't discard one
        .fold(f64::NEG_INFINITY, f64::max)
}

/// Per-fact Gelman–Rubin `R̂` from per-chain posterior means.
///
/// Because the sampled quantity is a 0/1 truth label, the within-chain
/// sample variance is available in closed form from the chain mean alone:
/// `Σ t² = Σ t`, so `s²_k = m_k (1 − m_k) · n / (n − 1)`. That lets the
/// diagnostic run off the per-chain means [`fit_chains`] already keeps —
/// no per-sample storage.
fn potential_scale_reduction(
    chains: &[TruthAssignment],
    db: &ClaimDb,
    samples_per_chain: usize,
) -> Vec<f64> {
    let chain_means: Vec<Vec<f64>> = chains
        .iter()
        .map(|c| db.fact_ids().map(|f| c.prob(f)).collect())
        .collect();
    rhat_binary_means(&chain_means, samples_per_chain)
}

/// Per-fact Gelman–Rubin `R̂` from per-chain posterior means of a **0/1
/// sampled quantity**, `chain_means[k][f]` being chain `k`'s mean for
/// fact `f`. Because the samples are binary, the within-chain sample
/// variance has the closed form `s²_k = m_k (1 − m_k) · n / (n − 1)`, so
/// the diagnostic needs no per-sample storage. Shared by the Bernoulli
/// ([`fit_chains`]) and real-valued
/// ([`crate::realvalued::fit_chains_with_stats`]) multi-chain drivers.
///
/// Returns all-1.0 (vacuously converged) for fewer than 2 chains or
/// fewer than 2 samples per chain.
pub fn rhat_binary_means(chain_means: &[Vec<f64>], samples_per_chain: usize) -> Vec<f64> {
    let k = chain_means.len();
    let n = samples_per_chain;
    let num_facts = chain_means.first().map_or(0, Vec::len);
    if k < 2 || n < 2 {
        return vec![1.0; num_facts];
    }
    let (kf, nf) = (k as f64, n as f64);
    (0..num_facts)
        .map(|f| {
            let means: Vec<f64> = chain_means.iter().map(|c| c[f]).collect();
            let grand = means.iter().sum::<f64>() / kf;
            // Within-chain variance (mean of per-chain sample variances).
            let w = means
                .iter()
                .map(|&m| m * (1.0 - m) * nf / (nf - 1.0))
                .sum::<f64>()
                / kf;
            // Between-chain variance of the means, B/n.
            let b_over_n = means.iter().map(|&m| (m - grand).powi(2)).sum::<f64>() / (kf - 1.0);
            if w <= 0.0 {
                // All chains constant: agreeing constants have converged;
                // disagreeing constants never will.
                if b_over_n <= 0.0 {
                    1.0
                } else {
                    f64::INFINITY
                }
            } else {
                let var_plus = (nf - 1.0) / nf * w + b_over_n;
                (var_plus / w).sqrt()
            }
        })
        .collect()
}

/// Per-source cached log-odds delta tables — the heart of the
/// [`Arithmetic::CachedLog`] kernel.
///
/// For a claim `(s, o)` on a fact currently labeled `i`, the log-space
/// kernel adds
///
/// ```text
/// Δ(s, i, o) = ln((n_{s,¬i,o} + α_{¬i,o}) / (n_{s,¬i,·} + α_{¬i,·}))
///            − ln((n_{s,i,o} − 1 + α_{i,o}) / (n_{s,i,·} − 1 + α_{i,·}))
/// ```
///
/// which depends only on `(s, i, o)` and source `s`'s current counts — the
/// `−1` excludes exactly this claim's own contribution, which always sits
/// in cell `(s, i, o)`. So each source carries a 4-entry table of `Δ`
/// indexed by `(current label, observation)`, invalidated whenever a flip
/// touches the source and recomputed on first use. In the steady state
/// (few flips per sweep) the inner loop does one table lookup per claim
/// and zero `ln` calls.
///
/// Every table entry is computed with the *same floating-point
/// expressions, in the same order*, as [`flip_probability_log`], so the
/// cached kernel's trajectory is bit-identical to the log-space kernel's.
struct DeltaCache {
    /// `delta[s * 4 + current * 2 + obs]`.
    delta: Vec<f64>,
    /// Per-source invalidation flags.
    dirty: Vec<bool>,
}

impl DeltaCache {
    fn new(num_sources: usize) -> Self {
        Self {
            delta: vec![0.0; num_sources * 4],
            dirty: vec![true; num_sources],
        }
    }

    /// Recomputes all four entries of source `s` from the current counts.
    ///
    /// Cells the sampler can never consult (a `(label, obs)` pair with zero
    /// claims — the `−1` would be invalid there) may compute a NaN; they
    /// are recomputed before any later use, so the NaN never escapes.
    #[inline]
    fn refresh(&mut self, s: usize, counts: &GibbsCounts, alpha: &[Vec<BetaPair>; 2]) {
        let sid = ltm_model::SourceId::from_usize(s);
        for current in [false, true] {
            let proposed = !current;
            let a_cur = alpha[current as usize][s];
            let a_pro = alpha[proposed as usize][s];
            // `n as f64 − 1.0` instead of the reference kernel's
            // `(n − 1) as f64`: identical value for every cell the sampler
            // consults (n ≥ 1 there; both are exact below 2⁵³), and immune
            // to u32 wrap-around on the unused n = 0 cells.
            let den_cur = counts.label_total(sid, current) as f64 - 1.0 + a_cur.strength();
            let den_pro = counts.label_total(sid, proposed) as f64 + a_pro.strength();
            for obs in [false, true] {
                let num_cur = counts.get(sid, current, obs) as f64 - 1.0 + a_cur.count(obs);
                let num_pro = counts.get(sid, proposed, obs) as f64 + a_pro.count(obs);
                self.delta[s * 4 + (current as usize) * 2 + obs as usize] =
                    (num_pro / den_pro).ln() - (num_cur / den_cur).ln();
            }
        }
        self.dirty[s] = false;
    }

    /// The log-odds delta for one claim, refreshing the source's table if a
    /// flip invalidated it.
    #[inline]
    fn lookup(
        &mut self,
        s: usize,
        current: bool,
        obs: bool,
        counts: &GibbsCounts,
        alpha: &[Vec<BetaPair>; 2],
    ) -> f64 {
        if self.dirty[s] {
            self.refresh(s, counts, alpha);
        }
        self.delta[s * 4 + (current as usize) * 2 + obs as usize]
    }
}

/// The sampler core shared by all entry points.
fn run_chain(
    db: &ClaimDb,
    config: &LtmConfig,
    source_priors: &SourcePriors,
    schedules: &[SampleSchedule],
) -> (Vec<TruthAssignment>, FitDiagnostics) {
    let num_facts = db.num_facts();
    let max_iterations = schedules
        .iter()
        .map(|s| s.iterations)
        .max()
        .expect("non-empty schedules");

    // Resolve per-source priors once into flat arrays indexed by source.
    let num_sources = db.num_sources();
    let alpha: [Vec<BetaPair>; 2] = [
        (0..num_sources)
            .map(|s| source_priors.alpha0_for(s))
            .collect(),
        (0..num_sources)
            .map(|s| source_priors.alpha1_for(s))
            .collect(),
    ];
    let beta = source_priors.base.beta;
    // The β log-odds prior term only depends on the current label; hoist
    // both values out of the sweep (same expression as the per-fact
    // reference computation, so trajectories stay bit-identical).
    let beta_log_odds = [
        (beta.count(true) / beta.count(false)).ln(), // current = false
        (beta.count(false) / beta.count(true)).ln(), // current = true
    ];

    let mut rng = rng_from_seed(config.seed);

    // Initialisation: uniform random labels (Algorithm 1).
    let mut labels: Vec<bool> = (0..num_facts).map(|_| rng.gen::<f64>() < 0.5).collect();
    let mut counts = GibbsCounts::from_labels(db, &labels);
    let mut cache = DeltaCache::new(num_sources);

    // The raw CSR arrays, sliced per fact — no per-fact iterator
    // construction or repeated offset lookups in the sweep.
    let offsets = db.fact_offsets();
    let all_sources = db.claim_sources();
    let all_obs = db.claim_observations();

    let mut acc: Vec<Vec<f64>> = schedules.iter().map(|_| vec![0.0; num_facts]).collect();
    let mut samples_taken = vec![0usize; schedules.len()];
    let mut flips_per_iteration = Vec::with_capacity(max_iterations);
    let mut degenerate_flips = 0u64;

    for iter in 1..=max_iterations {
        let mut flips = 0u32;
        for f in 0..num_facts {
            let current = labels[f];
            let range = offsets[f] as usize..offsets[f + 1] as usize;
            let sources = &all_sources[range.clone()];
            let obs = &all_obs[range];
            let flip_prob = match config.arithmetic {
                Arithmetic::CachedLog => {
                    let mut log_odds = beta_log_odds[current as usize];
                    for (s, &o) in sources.iter().zip(obs) {
                        log_odds += cache.lookup(s.index(), current, o, &counts, &alpha);
                    }
                    sigmoid(log_odds)
                }
                Arithmetic::LogSpace => flip_probability_log(
                    db,
                    ltm_model::FactId::from_usize(f),
                    current,
                    &counts,
                    &alpha,
                    beta,
                ),
                Arithmetic::Direct => {
                    let (p, degenerate) = flip_probability_direct(
                        db,
                        ltm_model::FactId::from_usize(f),
                        current,
                        &counts,
                        &alpha,
                        beta,
                    );
                    degenerate_flips += u64::from(degenerate);
                    p
                }
            };
            if rng.gen::<f64>() < flip_prob {
                labels[f] = !current;
                for (s, &o) in sources.iter().zip(obs) {
                    counts.flip(*s, current, o);
                    cache.dirty[s.index()] = true;
                }
                flips += 1;
            }
        }
        flips_per_iteration.push(flips);

        for (k, schedule) in schedules.iter().enumerate() {
            if schedule.samples_at(iter) {
                samples_taken[k] += 1;
                for (a, &t) in acc[k].iter_mut().zip(&labels) {
                    *a += t as u8 as f64;
                }
            }
        }
    }

    let assignments: Vec<TruthAssignment> = acc
        .into_iter()
        .zip(&samples_taken)
        .map(|(sum, &n)| {
            debug_assert!(n > 0, "schedule validation guarantees ≥ 1 sample");
            TruthAssignment::new(sum.into_iter().map(|x| x / n as f64).collect())
        })
        .collect();

    let diagnostics = FitDiagnostics {
        iterations: max_iterations,
        samples: samples_taken[0],
        flips_per_iteration,
        degenerate_flips,
    };
    (assignments, diagnostics)
}

/// Flip probability via log-odds (default arithmetic).
#[inline]
fn flip_probability_log(
    db: &ClaimDb,
    f: ltm_model::FactId,
    current: bool,
    counts: &GibbsCounts,
    alpha: &[Vec<BetaPair>; 2],
    beta: BetaPair,
) -> f64 {
    let proposed = !current;
    let mut log_odds = (beta.count(proposed) / beta.count(current)).ln();
    for (s, o) in db.claims_of_fact(f) {
        let a_cur = alpha[current as usize][s.index()];
        let a_pro = alpha[proposed as usize][s.index()];
        // Current label: exclude this claim's own contribution (the −1 of
        // Algorithm 1). Proposed label: raw counts. The subtraction happens
        // in f64 (exact below 2⁵³) so a bookkeeping bug cannot wrap a u32;
        // the debug assert pins the invariant that makes the −1 valid.
        debug_assert!(
            counts.get(s, current, o) > 0,
            "fact {f}: claim ({s}, {o}) not reflected in counts"
        );
        let num_cur = counts.get(s, current, o) as f64 - 1.0 + a_cur.count(o);
        let den_cur = counts.label_total(s, current) as f64 - 1.0 + a_cur.strength();
        let num_pro = counts.get(s, proposed, o) as f64 + a_pro.count(o);
        let den_pro = counts.label_total(s, proposed) as f64 + a_pro.strength();
        log_odds += (num_pro / den_pro).ln() - (num_cur / den_cur).ln();
    }
    sigmoid(log_odds)
}

/// Flip probability via direct products, exactly as Algorithm 1 writes it.
///
/// Returns the probability plus a flag marking the degenerate case where
/// both products underflowed to zero and the result is a fair-coin
/// fallback (surfaced as [`FitDiagnostics::degenerate_flips`]).
#[inline]
fn flip_probability_direct(
    db: &ClaimDb,
    f: ltm_model::FactId,
    current: bool,
    counts: &GibbsCounts,
    alpha: &[Vec<BetaPair>; 2],
    beta: BetaPair,
) -> (f64, bool) {
    let proposed = !current;
    let mut p_cur = beta.count(current);
    let mut p_pro = beta.count(proposed);
    for (s, o) in db.claims_of_fact(f) {
        let a_cur = alpha[current as usize][s.index()];
        let a_pro = alpha[proposed as usize][s.index()];
        // This claim contributes to cell (s, current, o), so both counts
        // are ≥ 1 whenever the sampler's bookkeeping is intact. The
        // saturating subtraction keeps a release build from wrapping to
        // u32::MAX (and silently corrupting the posterior) if that
        // invariant is ever broken; the debug assert catches the breakage
        // where it happens.
        let n_cell = counts.get(s, current, o);
        let n_total = counts.label_total(s, current);
        debug_assert!(
            n_cell > 0 && n_total > 0,
            "fact {f}: claim ({s}, {o}) not reflected in counts (cell {n_cell}, total {n_total})"
        );
        p_cur *= (n_cell.saturating_sub(1) as f64 + a_cur.count(o))
            / (n_total.saturating_sub(1) as f64 + a_cur.strength());
        p_pro *= (counts.get(s, proposed, o) as f64 + a_pro.count(o))
            / ((counts.label_total(s, proposed)) as f64 + a_pro.strength());
    }
    if p_cur + p_pro == 0.0 {
        // Both products underflowed — the very failure mode log-space
        // arithmetic avoids; fall back to a fair coin and report it.
        return (0.5, true);
    }
    (p_pro / (p_cur + p_pro), false)
}

/// Draws one forward sample of the generative process for testing: not part
/// of inference, but kept here so tests and the synthetic generator agree
/// on the model semantics.
pub fn sample_labels_from_prior<R: Rng + ?Sized>(
    num_facts: usize,
    beta: BetaPair,
    rng: &mut R,
) -> Vec<bool> {
    let theta = ltm_stats::Beta::new(beta.pos, beta.neg);
    (0..num_facts)
        .map(|_| rng.gen::<f64>() < theta.sample(rng))
        .collect()
}

/// Convenience used by tests: a fresh workspace RNG.
pub fn test_rng(seed: u64) -> WorkspaceRng {
    rng_from_seed(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltm_model::{RawDatabaseBuilder, SourceId};

    /// Paper Table 1 as a claim database.
    fn table1_db() -> (ltm_model::RawDatabase, ClaimDb) {
        let mut b = RawDatabaseBuilder::new();
        b.add("Harry Potter", "Daniel Radcliffe", "IMDB");
        b.add("Harry Potter", "Emma Watson", "IMDB");
        b.add("Harry Potter", "Rupert Grint", "IMDB");
        b.add("Harry Potter", "Daniel Radcliffe", "Netflix");
        b.add("Harry Potter", "Daniel Radcliffe", "BadSource.com");
        b.add("Harry Potter", "Emma Watson", "BadSource.com");
        b.add("Harry Potter", "Johnny Depp", "BadSource.com");
        b.add("Pirates 4", "Johnny Depp", "Hulu.com");
        let raw = b.build();
        let db = ClaimDb::from_raw(&raw);
        (raw, db)
    }

    /// Table 1 plus three symmetry-breaking movies.
    ///
    /// In the bare Table 1 instance, IMDB and BadSource.com are *exactly*
    /// symmetric under swapping Rupert Grint ↔ Johnny Depp (verified
    /// against the exact-enumeration oracle: the two facts get identical
    /// marginals), so no unsupervised method can separate them. The paper's
    /// narrative assumes quality learned from the full crawl; these extra
    /// movies supply that signal — IMDB and Netflix corroborate each other
    /// while BadSource.com keeps adding junk actors nobody else lists.
    fn extended_db() -> (ltm_model::RawDatabase, ClaimDb) {
        let mut b = RawDatabaseBuilder::new();
        b.add("Harry Potter", "Daniel Radcliffe", "IMDB");
        b.add("Harry Potter", "Emma Watson", "IMDB");
        b.add("Harry Potter", "Rupert Grint", "IMDB");
        b.add("Harry Potter", "Daniel Radcliffe", "Netflix");
        b.add("Harry Potter", "Daniel Radcliffe", "BadSource.com");
        b.add("Harry Potter", "Emma Watson", "BadSource.com");
        b.add("Harry Potter", "Johnny Depp", "BadSource.com");
        b.add("Pirates 4", "Johnny Depp", "Hulu.com");
        for (movie, a, bb, junk) in [
            (
                "Inception",
                "Leonardo DiCaprio",
                "Ellen Page",
                "Fake Actor 1",
            ),
            (
                "Twilight",
                "Kristen Stewart",
                "Robert Pattinson",
                "Fake Actor 2",
            ),
            ("Avatar", "Sam Worthington", "Zoe Saldana", "Fake Actor 3"),
        ] {
            b.add(movie, a, "IMDB");
            b.add(movie, bb, "IMDB");
            b.add(movie, a, "Netflix");
            b.add(movie, bb, "Netflix");
            b.add(movie, a, "BadSource.com");
            b.add(movie, junk, "BadSource.com");
        }
        let raw = b.build();
        let db = ClaimDb::from_raw(&raw);
        (raw, db)
    }

    fn small_config() -> LtmConfig {
        LtmConfig {
            priors: Priors {
                alpha0: BetaPair::new(1.0, 10.0),
                alpha1: BetaPair::new(5.0, 5.0),
                beta: BetaPair::new(2.0, 2.0),
            },
            schedule: SampleSchedule::new(400, 100, 2),
            seed: 7,
            arithmetic: Arithmetic::LogSpace,
        }
    }

    #[test]
    fn schedule_sampling_pattern() {
        let s = SampleSchedule::new(10, 2, 1);
        // Samples at iterations 4, 6, 8, 10.
        let hits: Vec<usize> = (1..=10).filter(|&i| s.samples_at(i)).collect();
        assert_eq!(hits, vec![4, 6, 8, 10]);
        assert_eq!(s.num_samples(), 4);
    }

    #[test]
    fn schedule_paper_default_counts() {
        let s = SampleSchedule::paper_default();
        assert_eq!(s.num_samples(), 16); // (100 − 20) / 5
    }

    #[test]
    #[should_panic(expected = "burn_in")]
    fn schedule_rejects_all_burn_in() {
        SampleSchedule::new(10, 10, 0);
    }

    #[test]
    #[should_panic(expected = "no sample fits")]
    fn schedule_rejects_gap_wider_than_tail() {
        // burn_in < iterations, but the 10-wide thinning gap never fires
        // within the 5 post-burn-in iterations: zero samples.
        SampleSchedule::new(10, 5, 9);
    }

    #[test]
    fn schedule_minimal_tail_accepted() {
        let s = SampleSchedule::new(10, 5, 4);
        assert_eq!(s.num_samples(), 1);
        assert!((1..=10).any(|i| s.samples_at(i)));
    }

    #[test]
    fn worst_rhat_treats_nan_as_not_converged() {
        // Regression: `f64::max` discards NaN (it keeps the other
        // operand), so a constructed diagnostic list whose only bad entry
        // is NaN used to fold to 1.0 — "converged" — and pass any
        // promotion gate. NaN must read as +∞ instead.
        assert_eq!(worst_rhat(&[1.0, f64::NAN, 1.05]), f64::INFINITY);
        assert_eq!(worst_rhat(&[f64::NAN]), f64::INFINITY);
        // The old fold really did lose the NaN — document the trap.
        let folded = [1.0, f64::NAN]
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(folded, 1.0, "f64::max silently drops NaN");
        // Sane inputs are untouched; infinities propagate.
        assert_eq!(worst_rhat(&[1.0, 1.3, 1.02]), 1.3);
        assert_eq!(worst_rhat(&[1.0, f64::INFINITY]), f64::INFINITY);
        assert_eq!(worst_rhat(&[]), 1.0, "no facts: vacuously converged");
    }

    #[test]
    fn fit_is_deterministic_for_fixed_seed() {
        let (_, db) = table1_db();
        let cfg = small_config();
        let a = fit(&db, &cfg);
        let b = fit(&db, &cfg);
        assert_eq!(a.truth, b.truth);
        assert_eq!(
            a.diagnostics.flips_per_iteration,
            b.diagnostics.flips_per_iteration
        );
    }

    #[test]
    fn different_seeds_agree_qualitatively() {
        let (raw, db) = extended_db();
        for seed in [1, 2, 3] {
            let cfg = LtmConfig {
                seed,
                ..small_config()
            };
            let fit = fit(&db, &cfg);
            // Depp-in-HP and the three junk actors share the same claim
            // pattern (exact marginal ≈ 0.26); every other fact is exactly
            // or heavily corroborated. All seeds must agree on that split.
            let depp_hp = db
                .fact_ids()
                .find(|&f| {
                    raw.entity_name(db.fact(f).entity) == "Harry Potter"
                        && raw.attr_name(db.fact(f).attr) == "Johnny Depp"
                })
                .unwrap();
            let p_depp = fit.truth.prob(depp_hp);
            assert!(p_depp < 0.5, "seed {seed}: p(Depp-in-HP) = {p_depp}");
            for f in db.fact_ids() {
                let name = raw.attr_name(db.fact(f).attr);
                if name.starts_with("Fake Actor") {
                    assert!(
                        fit.truth.prob(f) < 0.5,
                        "seed {seed}: junk fact {name} = {}",
                        fit.truth.prob(f)
                    );
                } else if f != depp_hp {
                    assert!(
                        fit.truth.prob(f) > p_depp,
                        "seed {seed}: {name} ranked at or below Depp-in-HP"
                    );
                }
            }
        }
    }

    #[test]
    fn recovers_table1_truth() {
        // The paper's running example: with two-sided quality, LTM keeps
        // Rupert Grint (single positive from reliable IMDB) while rejecting
        // Johnny Depp in Harry Potter (positive only from BadSource).
        let (raw, db) = extended_db();
        let fit = fit(&db, &small_config());
        let prob_of = |entity: &str, attr: &str| {
            let f = db
                .fact_ids()
                .find(|&f| {
                    raw.entity_name(db.fact(f).entity) == entity
                        && raw.attr_name(db.fact(f).attr) == attr
                })
                .unwrap();
            fit.truth.prob(f)
        };
        assert!(prob_of("Harry Potter", "Daniel Radcliffe") >= 0.5);
        assert!(prob_of("Harry Potter", "Emma Watson") >= 0.5);
        assert!(
            prob_of("Harry Potter", "Johnny Depp") < prob_of("Harry Potter", "Rupert Grint"),
            "false fact must rank below the under-reported true fact"
        );
    }

    #[test]
    fn cached_kernel_bit_identical_to_log_space() {
        // The tentpole invariant: the cached-table kernel must reproduce
        // the log-space kernel's trajectory *exactly* — same labels, same
        // flip counts, same RNG consumption — not merely approximately.
        for (_, db) in [table1_db(), extended_db()] {
            for seed in [7, 41, 1234] {
                let cfg_log = LtmConfig {
                    seed,
                    arithmetic: Arithmetic::LogSpace,
                    ..small_config()
                };
                let cfg_cached = LtmConfig {
                    arithmetic: Arithmetic::CachedLog,
                    ..cfg_log
                };
                let a = fit(&db, &cfg_log);
                let b = fit(&db, &cfg_cached);
                assert_eq!(a.truth, b.truth, "seed {seed}: posterior diverged");
                assert_eq!(
                    a.diagnostics.flips_per_iteration, b.diagnostics.flips_per_iteration,
                    "seed {seed}: trajectory diverged"
                );
            }
        }
    }

    #[test]
    fn default_arithmetic_is_cached() {
        assert_eq!(Arithmetic::default(), Arithmetic::CachedLog);
    }

    #[test]
    fn log_kernels_report_no_degenerate_flips() {
        let (_, db) = extended_db();
        let fit_res = fit(&db, &small_config());
        assert_eq!(fit_res.diagnostics.degenerate_flips, 0);
    }

    #[test]
    fn fit_chains_single_chain_matches_fit() {
        let (_, db) = extended_db();
        let cfg = small_config();
        let single = fit(&db, &cfg);
        let multi = fit_chains(&db, &cfg, 1);
        assert_eq!(multi.truth, single.truth);
        assert_eq!(multi.per_chain_truth.len(), 1);
        assert_eq!(multi.diagnostics.per_chain[0], single.diagnostics);
        // One chain: R̂ undefined, reported as converged.
        assert!(multi.diagnostics.rhat.iter().all(|&r| r == 1.0));
    }

    #[test]
    fn fit_chains_is_deterministic_and_chain_order_independent() {
        let (_, db) = extended_db();
        let cfg = small_config();
        let a = fit_chains(&db, &cfg, 4);
        let b = fit_chains(&db, &cfg, 4);
        assert_eq!(a.truth, b.truth);
        assert_eq!(a.per_chain_truth, b.per_chain_truth);
        assert_eq!(a.diagnostics, b.diagnostics);
        // Chains genuinely differ (different seeds) …
        assert_ne!(a.per_chain_truth[0], a.per_chain_truth[1]);
        // … and the pooled mean is the equal-weight average.
        for f in db.fact_ids() {
            let mean = a.per_chain_truth.iter().map(|t| t.prob(f)).sum::<f64>() / 4.0;
            assert!((a.truth.prob(f) - mean).abs() < 1e-12);
        }
    }

    #[test]
    fn fit_chains_rhat_near_one_on_well_identified_data() {
        // The extended db is strongly identified, so independent chains
        // must agree: R̂ close to 1 on (nearly) every fact.
        let (_, db) = extended_db();
        let cfg = LtmConfig {
            schedule: SampleSchedule::new(800, 200, 2),
            ..small_config()
        };
        let multi = fit_chains(&db, &cfg, 4);
        assert_eq!(multi.diagnostics.rhat.len(), db.num_facts());
        assert!(
            multi.diagnostics.converged_fraction >= 0.8,
            "converged fraction = {}, rhat = {:?}",
            multi.diagnostics.converged_fraction,
            multi.diagnostics.rhat
        );
        // max_rhat is the true maximum of the per-fact vector …
        let expected_max = multi
            .diagnostics
            .rhat
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(multi.diagnostics.max_rhat, expected_max);
        // … and finite-sample R̂ may undershoot 1 slightly but stays near it.
        assert!(
            (0.9..2.0).contains(&multi.diagnostics.max_rhat),
            "max_rhat = {}",
            multi.diagnostics.max_rhat
        );
        assert!(
            (0.9..1.5).contains(&multi.diagnostics.mean_rhat),
            "mean_rhat = {}",
            multi.diagnostics.mean_rhat
        );
    }

    #[test]
    fn fit_chains_empty_database() {
        let db = ClaimDb::from_parts(vec![], vec![], 0);
        let multi = fit_chains(&db, &small_config(), 3);
        assert!(multi.truth.is_empty());
        assert_eq!(multi.diagnostics.max_rhat, 1.0);
        assert_eq!(multi.diagnostics.converged_fraction, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one chain")]
    fn fit_chains_rejects_zero_chains() {
        let (_, db) = table1_db();
        fit_chains(&db, &small_config(), 0);
    }

    #[test]
    fn log_space_and_direct_agree() {
        let (_, db) = table1_db();
        let cfg_log = small_config();
        let cfg_dir = LtmConfig {
            arithmetic: Arithmetic::Direct,
            ..cfg_log
        };
        // Same seed → identical trajectory as long as flip probabilities
        // agree to the last ulp that matters for the uniform draws.
        let a = fit(&db, &cfg_log);
        let b = fit(&db, &cfg_dir);
        for f in db.fact_ids() {
            assert!(
                (a.truth.prob(f) - b.truth.prob(f)).abs() < 0.05,
                "fact {f}: log {} vs direct {}",
                a.truth.prob(f),
                b.truth.prob(f)
            );
        }
    }

    #[test]
    fn counts_stay_consistent_with_labels() {
        // Failure-injection style check: after a full fit, re-derive counts
        // from scratch and compare with the incrementally-updated table.
        // (Runs the chain manually to inspect internals.)
        let (_, db) = table1_db();
        let cfg = small_config();
        let priors = SourcePriors::uniform(cfg.priors, db.num_sources());
        let mut rng = rng_from_seed(cfg.seed);
        let mut labels: Vec<bool> = (0..db.num_facts())
            .map(|_| rng.gen::<f64>() < 0.5)
            .collect();
        let mut counts = GibbsCounts::from_labels(&db, &labels);
        let alpha: [Vec<BetaPair>; 2] = [
            (0..db.num_sources())
                .map(|s| priors.alpha0_for(s))
                .collect(),
            (0..db.num_sources())
                .map(|s| priors.alpha1_for(s))
                .collect(),
        ];
        for _ in 0..50 {
            for f in db.fact_ids() {
                let current = labels[f.index()];
                let p = flip_probability_log(&db, f, current, &counts, &alpha, cfg.priors.beta);
                if rng.gen::<f64>() < p {
                    labels[f.index()] = !current;
                    for (s, o) in db.claims_of_fact(f) {
                        counts.flip(s, current, o);
                    }
                }
            }
            assert_eq!(
                counts,
                GibbsCounts::from_labels(&db, &labels),
                "incremental counts diverged from labels"
            );
        }
    }

    #[test]
    fn multi_schedule_matches_single_schedule() {
        let (_, db) = table1_db();
        let cfg = small_config();
        let schedules = [
            SampleSchedule::new(100, 20, 4),
            cfg.schedule,
            SampleSchedule::new(50, 10, 0),
        ];
        let multi = fit_with_schedules(&db, &cfg, &schedules);
        // The schedule equal to cfg.schedule must reproduce fit()'s truth.
        let single = fit(&db, &cfg);
        assert_eq!(multi[1], single.truth);
        assert_eq!(multi.len(), 3);
    }

    #[test]
    fn quality_orders_sources_correctly() {
        let (raw, db) = extended_db();
        let fit = fit(&db, &small_config());
        let sid = |name: &str| raw.source_id(name).unwrap();
        // IMDB asserts all three true HP facts → highest sensitivity.
        // Netflix asserts only one of three → low sensitivity, but it never
        // asserts a false fact → specificity at least as high as BadSource.
        let q = &fit.quality;
        assert!(q.sensitivity(sid("IMDB")) > q.sensitivity(sid("Netflix")));
        assert!(q.specificity(sid("Netflix")) > q.specificity(sid("BadSource.com")));
        assert!(q.specificity(sid("IMDB")) > q.specificity(sid("BadSource.com")));
    }

    #[test]
    fn empty_database_fit() {
        let db = ClaimDb::from_parts(vec![], vec![], 0);
        let fit = fit(&db, &small_config());
        assert!(fit.truth.is_empty());
        assert_eq!(fit.diagnostics.iterations, 400);
    }

    #[test]
    fn diagnostics_flip_counts_settle() {
        let (_, db) = table1_db();
        let fit = fit(&db, &small_config());
        let flips = &fit.diagnostics.flips_per_iteration;
        assert_eq!(flips.len(), 400);
        // Late-chain flip rate should not exceed the theoretical max.
        assert!(flips.iter().all(|&f| f as usize <= db.num_facts()));
    }

    #[test]
    fn prior_sampler_respects_beta_mean() {
        let mut rng = test_rng(3);
        let labels = sample_labels_from_prior(20_000, BetaPair::new(80.0, 20.0), &mut rng);
        let frac = labels.iter().filter(|&&t| t).count() as f64 / labels.len() as f64;
        assert!((frac - 0.8).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn strong_specificity_prior_prevents_global_flip() {
        // With uniform priors the posterior "everything flipped" has the
        // same likelihood (the symmetry the paper warns about). The strong
        // α₀ prior must break the tie towards high specificity.
        let (raw, db) = table1_db();
        let cfg = LtmConfig {
            priors: Priors {
                alpha0: BetaPair::new(1.0, 100.0),
                alpha1: BetaPair::new(5.0, 5.0),
                beta: BetaPair::new(2.0, 2.0),
            },
            ..small_config()
        };
        let fit = fit(&db, &cfg);
        // Majority-supported facts must come out true, not flipped.
        let daniel = db
            .fact_ids()
            .find(|&f| raw.attr_name(db.fact(f).attr) == "Daniel Radcliffe")
            .unwrap();
        assert!(fit.truth.prob(daniel) > 0.5);
        let s = SourceId::new(0);
        let _ = s; // silence unused in case of refactor
    }
}
