//! Incremental truth prediction — **LTMinc** (paper Section 5.4,
//! Equation 3).
//!
//! When data arrives as a stream, refitting the full model on every batch
//! is wasteful. If source quality can be assumed stable over the medium
//! term, the posterior truth of a *new* fact has a closed form given the
//! learned `φ¹` (sensitivity) and `φ⁰` (false-positive rate):
//!
//! ```text
//! p(t_f = 1 | o, s) = β₁ Π_c (φ¹_s)^{o_c} (1−φ¹_s)^{1−o_c}
//!                   / Σ_{i∈{0,1}} β_i Π_c (φⁱ_s)^{o_c} (1−φⁱ_s)^{1−o_c}
//! ```
//!
//! This needs no iteration at all — the paper's Table 9 shows LTMinc
//! running as fast as Voting — and Table 7 shows it matching full LTM
//! accuracy when quality is learned on sibling data.

use ltm_model::{ClaimDb, SourceId, TruthAssignment};
use ltm_stats::special::sigmoid;

use crate::gibbs::LtmFit;
use crate::priors::{BetaPair, Priors};
use crate::quality::SourceQuality;

/// A closed-form truth predictor parameterised by learned source quality.
#[derive(Debug, Clone, PartialEq)]
pub struct IncrementalLtm {
    /// Per-source sensitivity `φ¹`, indexed by `SourceId`.
    phi1: Vec<f64>,
    /// Per-source false-positive rate `φ⁰ = 1 − specificity`.
    phi0: Vec<f64>,
    /// Prior truth pseudo-counts `β`.
    beta: BetaPair,
    /// Quality assumed for sources never seen during training: the prior
    /// means of `φ¹` and `φ⁰`.
    default_phi1: f64,
    default_phi0: f64,
}

impl IncrementalLtm {
    /// Builds a predictor from learned source quality. `priors` supplies
    /// `β` and the fallback quality for unseen sources.
    pub fn new(quality: &SourceQuality, priors: &Priors) -> Self {
        let n = quality.num_sources();
        let mut phi1 = Vec::with_capacity(n);
        let mut phi0 = Vec::with_capacity(n);
        for (s, record) in quality.iter() {
            debug_assert_eq!(s.index(), phi1.len());
            phi1.push(clamp_prob(record.sensitivity));
            phi0.push(clamp_prob(1.0 - record.specificity));
        }
        Self {
            phi1,
            phi0,
            beta: priors.beta,
            default_phi1: clamp_prob(priors.alpha1.mean()),
            default_phi0: clamp_prob(priors.alpha0.mean()),
        }
    }

    /// Builds a predictor straight from a batch fit.
    pub fn from_fit(fit: &LtmFit, priors: &Priors) -> Self {
        Self::new(&fit.quality, priors)
    }

    /// Rebuilds a predictor from previously exported parameters (see
    /// [`IncrementalLtm::phi1`] / [`IncrementalLtm::phi0`] /
    /// [`IncrementalLtm::fallback`]) — the snapshot-restore path of
    /// `ltm-serve`. All probabilities are re-clamped away from 0/1.
    ///
    /// # Panics
    ///
    /// Panics if `phi1` and `phi0` have different lengths.
    pub fn from_parts(
        phi1: Vec<f64>,
        phi0: Vec<f64>,
        beta: BetaPair,
        default_phi1: f64,
        default_phi0: f64,
    ) -> Self {
        assert_eq!(
            phi1.len(),
            phi0.len(),
            "phi1 and phi0 must cover the same sources"
        );
        Self {
            phi1: phi1.into_iter().map(clamp_prob).collect(),
            phi0: phi0.into_iter().map(clamp_prob).collect(),
            beta,
            default_phi1: clamp_prob(default_phi1),
            default_phi0: clamp_prob(default_phi0),
        }
    }

    /// Per-source sensitivity `φ¹`, indexed by `SourceId`.
    pub fn phi1(&self) -> &[f64] {
        &self.phi1
    }

    /// Per-source false-positive rate `φ⁰`, indexed by `SourceId`.
    pub fn phi0(&self) -> &[f64] {
        &self.phi0
    }

    /// The `(φ¹, φ⁰)` fallback used for sources outside the learned id
    /// space.
    pub fn fallback(&self) -> (f64, f64) {
        (self.default_phi1, self.default_phi0)
    }

    /// Sensitivity used for source index `s` (learned or fallback).
    #[inline]
    fn phi1_for(&self, s: usize) -> f64 {
        self.phi1.get(s).copied().unwrap_or(self.default_phi1)
    }

    /// False-positive rate used for source index `s` (learned or fallback).
    #[inline]
    fn phi0_for(&self, s: usize) -> f64 {
        self.phi0.get(s).copied().unwrap_or(self.default_phi0)
    }

    /// Equation 3's log-odds for one fact's claims — the single shared
    /// implementation behind [`IncrementalLtm::predict`] and
    /// [`IncrementalLtm::predict_fact`].
    fn log_odds<I: IntoIterator<Item = (SourceId, bool)>>(&self, claims: I) -> f64 {
        // Work with log-odds: ln β₁/β₀ + Σ_c ln(term₁/term₀).
        let mut log_odds = (self.beta.pos / self.beta.neg).ln();
        for (s, o) in claims {
            let p1 = self.phi1_for(s.index());
            let p0 = self.phi0_for(s.index());
            let (l1, l0) = if o { (p1, p0) } else { (1.0 - p1, 1.0 - p0) };
            log_odds += (l1 / l0).ln();
        }
        log_odds
    }

    /// Applies Equation 3 to a single fact given as its claim list —
    /// the serving-path entry point: no throwaway [`ClaimDb`] is built per
    /// request. Unknown source ids fall back to prior-mean quality; an
    /// empty claim list yields the `β` prior mean.
    ///
    /// ```
    /// use ltm_core::{BetaPair, IncrementalLtm};
    /// use ltm_model::SourceId;
    ///
    /// // One source with sensitivity φ¹ = 0.9 and false-positive rate
    /// // φ⁰ = 0.05, under a flat β prior.
    /// let p = IncrementalLtm::from_parts(
    ///     vec![0.9], vec![0.05], BetaPair::new(1.0, 1.0), 0.5, 0.1);
    /// // Equation 3: p = 0.9 / (0.9 + 0.05) for a single positive claim.
    /// let prob = p.predict_fact(&[(SourceId::new(0), true)]);
    /// assert!((prob - 0.9 / 0.95).abs() < 1e-9);
    /// ```
    pub fn predict_fact(&self, claims: &[(SourceId, bool)]) -> f64 {
        sigmoid(self.log_odds(claims.iter().copied()))
    }

    /// Applies Equation 3 to every fact of `db`. Sources of `db` must share
    /// the id space the quality was learned on (unknown ids fall back to
    /// prior-mean quality).
    pub fn predict(&self, db: &ClaimDb) -> TruthAssignment {
        let probs: Vec<f64> = db
            .fact_ids()
            .map(|f| sigmoid(self.log_odds(db.claims_of_fact(f))))
            .collect();
        TruthAssignment::new(probs)
    }

    /// The `β` prior in use.
    pub fn beta(&self) -> BetaPair {
        self.beta
    }
}

/// Keeps likelihood terms away from exact 0/1 so the log-odds stay finite
/// even for degenerate quality estimates.
#[inline]
fn clamp_prob(p: f64) -> f64 {
    p.clamp(1e-9, 1.0 - 1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltm_model::{AttrId, Claim, EntityId, Fact, FactId, SourceId};

    /// A database with hand-set claims to verify Equation 3 numerically.
    fn db_two_facts() -> ClaimDb {
        let facts = vec![
            Fact {
                entity: EntityId::new(0),
                attr: AttrId::new(0),
            },
            Fact {
                entity: EntityId::new(1),
                attr: AttrId::new(1),
            },
        ];
        let claims = vec![
            // Fact 0: source 0 positive, source 1 negative.
            Claim {
                fact: FactId::new(0),
                source: SourceId::new(0),
                observation: true,
            },
            Claim {
                fact: FactId::new(0),
                source: SourceId::new(1),
                observation: false,
            },
            // Fact 1: source 1 positive.
            Claim {
                fact: FactId::new(1),
                source: SourceId::new(1),
                observation: true,
            },
        ];
        ClaimDb::from_parts(facts, claims, 2)
    }

    /// Builds a predictor with explicit quality values by constructing the
    /// struct through its public constructor path.
    fn predictor<const N: usize>(
        phi1: [f64; N],
        spec: [f64; N],
        beta: (f64, f64),
    ) -> IncrementalLtm {
        IncrementalLtm {
            phi1: phi1.to_vec(),
            phi0: spec.iter().map(|s| 1.0 - s).collect(),
            beta: BetaPair::new(beta.0, beta.1),
            default_phi1: 0.5,
            default_phi0: 0.1,
        }
    }

    #[test]
    fn equation3_hand_computed() {
        // φ¹ = (0.9, 0.5), specificity = (0.95, 0.8) → φ⁰ = (0.05, 0.2);
        // β = (1, 1).
        let p = predictor([0.9, 0.5], [0.95, 0.8], (1.0, 1.0));
        let db = db_two_facts();
        let t = p.predict(&db);

        // Fact 0: positive from s0, negative from s1.
        // num = 0.9 · (1 − 0.5) = 0.45;  den_false = 0.05 · (1 − 0.2) = 0.04.
        // p = 0.45 / (0.45 + 0.04).
        let expected0 = 0.45 / 0.49;
        assert!((t.prob(FactId::new(0)) - expected0).abs() < 1e-9);

        // Fact 1: positive from s1 only: 0.5 vs 0.2 → 0.5/0.7.
        let expected1 = 0.5 / 0.7;
        assert!((t.prob(FactId::new(1)) - expected1).abs() < 1e-9);
    }

    #[test]
    fn beta_prior_shifts_posterior() {
        let skeptical = predictor([0.9, 0.5], [0.95, 0.8], (1.0, 9.0));
        let credulous = predictor([0.9, 0.5], [0.95, 0.8], (9.0, 1.0));
        let db = db_two_facts();
        let f = FactId::new(1);
        assert!(skeptical.predict(&db).prob(f) < credulous.predict(&db).prob(f));
    }

    #[test]
    fn unseen_source_uses_fallback_quality() {
        let p = predictor([0.9], [0.95], (1.0, 1.0));
        // Only source 0 was learned; db references source 1.
        let facts = vec![Fact {
            entity: EntityId::new(0),
            attr: AttrId::new(0),
        }];
        let claims = vec![Claim {
            fact: FactId::new(0),
            source: SourceId::new(1),
            observation: true,
        }];
        let db = ClaimDb::from_parts(facts, claims, 2);
        let t = p.predict(&db);
        // Fallbacks: φ¹ = 0.5, φ⁰ = 0.1 → p = 0.5 / 0.6.
        assert!((t.prob(FactId::new(0)) - 0.5 / 0.6).abs() < 1e-9);
    }

    #[test]
    fn degenerate_quality_stays_finite() {
        let p = predictor([1.0, 0.0], [1.0, 0.0], (1.0, 1.0));
        let db = db_two_facts();
        let t = p.predict(&db);
        for f in db.fact_ids() {
            assert!(t.prob(f).is_finite());
            assert!((0.0..=1.0).contains(&t.prob(f)));
        }
    }

    #[test]
    fn wrapper_predictor_is_well_formed() {
        // predictor() bypasses clamping; the public constructor must clamp.
        // Build quality via estimate() with degenerate truth and verify the
        // predictor still yields finite probabilities.
        use crate::priors::Priors;
        use crate::quality::SourceQuality;
        let db = db_two_facts();
        let truth = TruthAssignment::new(vec![1.0, 0.0]);
        let weak = Priors {
            alpha0: BetaPair::new(1e-9, 1e-9),
            alpha1: BetaPair::new(1e-9, 1e-9),
            beta: BetaPair::new(1.0, 1.0),
        };
        let q = SourceQuality::estimate(&db, &truth, &weak);
        let inc = IncrementalLtm::new(&q, &weak);
        let t = inc.predict(&db);
        for f in db.fact_ids() {
            assert!(t.prob(f).is_finite());
        }
    }

    #[test]
    fn predict_fact_matches_predict() {
        let p = predictor([0.9, 0.5], [0.95, 0.8], (2.0, 3.0));
        let db = db_two_facts();
        let t = p.predict(&db);
        for f in db.fact_ids() {
            let claims: Vec<(SourceId, bool)> = db.claims_of_fact(f).collect();
            assert_eq!(p.predict_fact(&claims), t.prob(f), "fact {f}");
        }
    }

    #[test]
    fn predict_fact_empty_claims_gives_beta_prior() {
        let p = predictor([0.9], [0.95], (3.0, 1.0));
        assert!((p.predict_fact(&[]) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn predict_fact_unknown_source_uses_fallback() {
        let p = predictor([0.9], [0.95], (1.0, 1.0));
        // Fallbacks in `predictor()`: φ¹ = 0.5, φ⁰ = 0.1 → p = 0.5/0.6.
        let got = p.predict_fact(&[(SourceId::new(u32::MAX), true)]);
        assert!((got - 0.5 / 0.6).abs() < 1e-9);
    }

    #[test]
    fn from_parts_round_trips_parameters() {
        let p = predictor([0.9, 0.5], [0.95, 0.8], (2.0, 5.0));
        let rebuilt = IncrementalLtm::from_parts(
            p.phi1().to_vec(),
            p.phi0().to_vec(),
            p.beta(),
            p.fallback().0,
            p.fallback().1,
        );
        let db = db_two_facts();
        for f in db.fact_ids() {
            assert_eq!(rebuilt.predict(&db).prob(f), p.predict(&db).prob(f));
        }
    }

    #[test]
    fn from_parts_clamps_degenerate_inputs() {
        let p = IncrementalLtm::from_parts(
            vec![1.0, 0.0],
            vec![1.0, 0.0],
            BetaPair::new(1.0, 1.0),
            1.0,
            0.0,
        );
        let db = db_two_facts();
        for f in db.fact_ids() {
            let prob = p.predict(&db).prob(f);
            assert!(prob.is_finite() && (0.0..=1.0).contains(&prob));
        }
    }

    #[test]
    fn fact_with_no_claims_gets_prior() {
        let p = predictor([0.9, 0.5], [0.95, 0.8], (3.0, 1.0));
        let facts = vec![Fact {
            entity: EntityId::new(0),
            attr: AttrId::new(0),
        }];
        let db = ClaimDb::from_parts(facts, vec![], 2);
        let t = p.predict(&db);
        assert!((t.prob(FactId::new(0)) - 0.75).abs() < 1e-12);
    }
}
