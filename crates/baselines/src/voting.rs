//! Majority voting (paper §6.2, "Voting").
//!
//! "For each fact, compute the proportion of corresponding claims that are
//! positive." A fact asserted by all covering sources scores 1; one denied
//! by all of them scores 0. Note that thanks to the claim-table
//! construction this is vote-per-individual-attribute, which the paper
//! points out is *fairer* than the concatenated-list voting used in
//! earlier comparisons.

use ltm_model::{ClaimDb, TruthAssignment};

use crate::method::TruthMethod;

/// Majority voting over the claim table.
#[derive(Debug, Clone, Copy, Default)]
pub struct Voting;

impl TruthMethod for Voting {
    fn name(&self) -> &'static str {
        "Voting"
    }

    fn infer(&self, db: &ClaimDb) -> TruthAssignment {
        let probs = db
            .fact_ids()
            .map(|f| {
                let obs = db.fact_claim_observations(f);
                if obs.is_empty() {
                    // No covering source at all: no evidence either way.
                    0.5
                } else {
                    obs.iter().filter(|&&o| o).count() as f64 / obs.len() as f64
                }
            })
            .collect();
        TruthAssignment::new(probs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::fixtures::{fact_id, table1};

    #[test]
    fn table1_vote_fractions() {
        let (raw, db) = table1();
        let t = Voting.infer(&db);
        // Daniel Radcliffe: 3/3 positive.
        assert_eq!(
            t.prob(fact_id(&raw, &db, "Harry Potter", "Daniel Radcliffe")),
            1.0
        );
        // Emma Watson: 2/3.
        assert!(
            (t.prob(fact_id(&raw, &db, "Harry Potter", "Emma Watson")) - 2.0 / 3.0).abs() < 1e-12
        );
        // Rupert Grint: 1/3 — voting at threshold 0.5 wrongly rejects it,
        // the paper's motivating failure.
        assert!(
            (t.prob(fact_id(&raw, &db, "Harry Potter", "Rupert Grint")) - 1.0 / 3.0).abs() < 1e-12
        );
        // Johnny Depp in HP: 1/3 — indistinguishable from Rupert by votes.
        assert_eq!(
            t.prob(fact_id(&raw, &db, "Harry Potter", "Johnny Depp")),
            t.prob(fact_id(&raw, &db, "Harry Potter", "Rupert Grint"))
        );
        // Pirates: single positive claim → 1.
        assert_eq!(t.prob(fact_id(&raw, &db, "Pirates 4", "Johnny Depp")), 1.0);
    }

    #[test]
    fn fact_without_claims_scores_half() {
        use ltm_model::{AttrId, EntityId, Fact};
        let db = ClaimDb::from_parts(
            vec![Fact {
                entity: EntityId::new(0),
                attr: AttrId::new(0),
            }],
            vec![],
            1,
        );
        assert_eq!(Voting.infer(&db).prob(ltm_model::FactId::new(0)), 0.5);
    }

    #[test]
    fn deterministic() {
        let (_, db) = table1();
        assert_eq!(Voting.infer(&db), Voting.infer(&db));
    }
}
