//! PooledInvestment (Pasternack & Roth, IJCAI 2011).
//!
//! Like Investment, but a fact's grown belief is linearly rescaled within
//! its *mutual-exclusion set* — here, the facts of the same entity — so
//! belief mass is redistributed rather than inflated:
//!
//! ```text
//! H_i(f) = Σ_{s ∈ S_f} T_i(s) / |F_s|
//! B_i(f) = H_i(f) · G(H_i(f)) / Σ_{f' ∈ mutex(f)} G(H_i(f'))
//! ```
//!
//! with `G(x) = x^g`, `g = 1.4` (the authors' recommended setting). Using
//! the entity's fact group as the mutex set follows how the method is
//! applied to multi-valued data in the LTM paper's comparison; it is also
//! why the method ends up very conservative there — with several
//! simultaneously-true facts per entity, pooling forces them to share
//! belief (recall 0.142 / 0.025 in Table 7).

use ltm_model::{ClaimDb, TruthAssignment};

use crate::graph::{normalize_max, PositiveGraph};
use crate::method::TruthMethod;

/// PooledInvestment iterations over positive claims.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PooledInvestment {
    /// Belief growth exponent `g` (authors recommend 1.4).
    pub growth: f64,
    /// Number of rounds.
    pub iterations: usize,
}

impl Default for PooledInvestment {
    fn default() -> Self {
        // 20 rounds, as for `Investment`: the growth recursion is doubly
        // exponential and long runs underflow all non-maximal beliefs.
        Self {
            growth: 1.4,
            iterations: 20,
        }
    }
}

impl TruthMethod for PooledInvestment {
    fn name(&self) -> &'static str {
        "PooledInvestment"
    }

    fn infer(&self, db: &ClaimDb) -> TruthAssignment {
        let g = PositiveGraph::new(db);
        let num_sources = g.num_sources();
        let mut trust = vec![1.0f64; num_sources];
        let mut belief = pooled_beliefs(db, &g, &trust, self.growth);

        for _ in 0..self.iterations {
            let mut new_trust = vec![0.0f64; num_sources];
            for s in db.source_ids() {
                let degree = g.source_degree(s) as f64;
                if degree == 0.0 {
                    continue;
                }
                let stake = trust[s.index()] / degree;
                let mut total = 0.0;
                for &f in g.facts_of(s) {
                    let pool: f64 = g
                        .sources_of(f)
                        .iter()
                        .map(|&s2| trust[s2.index()] / g.source_degree(s2).max(1) as f64)
                        .sum();
                    if pool > 0.0 {
                        total += belief[f.index()] * stake / pool;
                    }
                }
                new_trust[s.index()] = total;
            }
            normalize_max(&mut new_trust);
            trust = new_trust;
            belief = pooled_beliefs(db, &g, &trust, self.growth);
        }
        TruthAssignment::new(belief)
    }
}

/// Computes `H`, applies growth, and rescales within each entity's fact
/// group; the result is already in `[0, 1]`.
fn pooled_beliefs(db: &ClaimDb, g: &PositiveGraph, trust: &[f64], growth: f64) -> Vec<f64> {
    let mut h = vec![0.0f64; db.num_facts()];
    for f in db.fact_ids() {
        h[f.index()] = g
            .sources_of(f)
            .iter()
            .map(|&s| trust[s.index()] / g.source_degree(s).max(1) as f64)
            .sum();
    }
    normalize_max(&mut h);
    let mut belief = vec![0.0f64; db.num_facts()];
    for e in db.entity_ids() {
        let group = db.facts_of_entity(e);
        let denom: f64 = group.iter().map(|&f| h[f.index()].powf(growth)).sum();
        for &f in group {
            belief[f.index()] = if denom > 0.0 {
                h[f.index()] * h[f.index()].powf(growth) / denom
            } else {
                0.0
            };
        }
    }
    // The pooled scores are ≤ H(f) ≤ 1 but may be small; rescale to use the
    // full [0, 1] range as the other fact-finders do.
    normalize_max(&mut belief);
    belief
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::fixtures::{fact_id, table1};

    #[test]
    fn pooling_penalises_siblings() {
        let (raw, db) = table1();
        let t = PooledInvestment::default().infer(&db);
        // Within the Harry Potter pool the weakly-supported facts are
        // crushed relative to Daniel Radcliffe.
        let daniel = t.prob(fact_id(&raw, &db, "Harry Potter", "Daniel Radcliffe"));
        let rupert = t.prob(fact_id(&raw, &db, "Harry Potter", "Rupert Grint"));
        assert!(daniel > 2.0 * rupert, "daniel {daniel} vs rupert {rupert}");
    }

    #[test]
    fn single_fact_entity_keeps_belief() {
        // Pirates 4 has a singleton pool: no sibling competition.
        let (raw, db) = table1();
        let t = PooledInvestment::default().infer(&db);
        let pirates = t.prob(fact_id(&raw, &db, "Pirates 4", "Johnny Depp"));
        assert!(pirates > 0.0);
    }

    #[test]
    fn deterministic_and_bounded() {
        let (_, db) = table1();
        let m = PooledInvestment::default();
        let a = m.infer(&db);
        assert_eq!(a, m.infer(&db));
        for f in db.fact_ids() {
            assert!((0.0..=1.0).contains(&a.prob(f)));
        }
    }

    #[test]
    fn conservative_overall() {
        // Table 7's qualitative shape: few facts clear threshold 0.5.
        let (_, db) = table1();
        let t = PooledInvestment::default().infer(&db);
        let above = db.fact_ids().filter(|&f| t.prob(f) >= 0.5).count();
        assert!(above <= 3);
    }
}
