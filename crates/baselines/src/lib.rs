//! Prior truth-finding methods, reimplemented as baselines for the Latent
//! Truth Model (paper Section 6.2).
//!
//! The paper compares LTM against seven earlier approaches. Each is
//! implemented here from its original publication, behind the common
//! [`TruthMethod`] trait:
//!
//! | Method | Origin | Claims used | Source quality |
//! |---|---|---|---|
//! | [`Voting`] | folklore | positive + negative | none |
//! | [`TruthFinder`] | Yin, Han & Yu, KDD'07 | positive only | precision-like trust |
//! | [`HubAuthority`] | Kleinberg'99 / Pasternack & Roth | positive only | hub score |
//! | [`AvgLog`] | Pasternack & Roth, COLING'10 | positive only | log-damped average |
//! | [`Investment`] | Pasternack & Roth, COLING'10 | positive only | invested credit |
//! | [`PooledInvestment`] | Pasternack & Roth, IJCAI'11 | positive only | pooled credit |
//! | [`ThreeEstimates`] | Galland et al., WSDM'10 | positive + negative | scalar error + fact difficulty |
//!
//! Parameters default to the settings the original authors recommend, as
//! the LTM paper used ("Parameters for the above algorithms are set
//! according to the optimal settings suggested by their authors").
//!
//! All methods output a per-fact score in `[0, 1]` wrapped in a
//! [`ltm_model::TruthAssignment`], so the evaluation pipeline treats every
//! method — including LTM itself — uniformly.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod avglog;
pub mod graph;
pub mod hits;
pub mod investment;
pub mod method;
pub mod pooled;
pub mod three_estimates;
pub mod truthfinder;
pub mod voting;

pub use avglog::AvgLog;
pub use graph::PositiveGraph;
pub use hits::HubAuthority;
pub use investment::Investment;
pub use method::{source_agreement_trust, TruthMethod};
pub use pooled::PooledInvestment;
pub use three_estimates::ThreeEstimates;
pub use truthfinder::TruthFinder;
pub use voting::Voting;

/// All seven baselines with their default (paper) parameters, in the
/// presentation order of the paper's Table 7.
pub fn all_baselines() -> Vec<Box<dyn TruthMethod>> {
    vec![
        Box::new(ThreeEstimates::default()),
        Box::new(Voting),
        Box::new(TruthFinder::default()),
        Box::new(Investment::default()),
        Box::new(HubAuthority::default()),
        Box::new(AvgLog::default()),
        Box::new(PooledInvestment::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_contains_all_seven() {
        let methods = all_baselines();
        assert_eq!(methods.len(), 7);
        let names: Vec<&str> = methods.iter().map(|m| m.name()).collect();
        for expected in [
            "3-Estimates",
            "Voting",
            "TruthFinder",
            "Investment",
            "HubAuthority",
            "AvgLog",
            "PooledInvestment",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }
}
