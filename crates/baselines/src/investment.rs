//! Investment fact-finder (Pasternack & Roth, COLING 2010).
//!
//! Each source "invests" its trust uniformly across its claims and is paid
//! back in proportion to its share of each claim's belief; belief grows
//! non-linearly so well-funded claims pull ahead:
//!
//! ```text
//! T_i(s) = Σ_{f ∈ F_s}  B_{i−1}(f) · (T_{i−1}(s)/|F_s|)
//!                      / (Σ_{s' ∈ S_f} T_{i−1}(s')/|F_s'|)
//! B_i(f) = G( Σ_{s ∈ S_f} T_i(s) / |F_s| ),   G(x) = x^g,  g = 1.2
//! ```
//!
//! over positive claims with per-round max-normalisation for numeric
//! stability. Pasternack & Roth evaluate fact-finders by belief *ranking
//! within each mutual-exclusion group*, so the final scores here are
//! calibrated per entity (each entity's top fact scores 1, its competitors
//! proportionally). This matches the over-optimistic behaviour the LTM
//! paper reports for Investment on multi-truth data (FPR 1.0 at threshold
//! 0.5 in Table 7): in sparse conflict data most facts are the best-funded
//! claim of *some* entity and sail over the threshold.

use ltm_model::{ClaimDb, TruthAssignment};

use crate::graph::{normalize_max, PositiveGraph};
use crate::method::TruthMethod;

/// Investment iterations over positive claims.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Investment {
    /// Belief growth exponent `g` (authors recommend 1.2).
    pub growth: f64,
    /// Number of rounds.
    pub iterations: usize,
}

impl Default for Investment {
    fn default() -> Self {
        // 20 rounds is the Pasternack–Roth setting. The growth step makes
        // the dynamics doubly exponential (beliefs behave like x^(g^n)), so
        // many more rounds underflow every non-maximal belief to exactly
        // zero; 20 keeps the ranking finite, which is how the method was
        // designed to be read.
        Self {
            growth: 1.2,
            iterations: 20,
        }
    }
}

impl TruthMethod for Investment {
    fn name(&self) -> &'static str {
        "Investment"
    }

    fn infer(&self, db: &ClaimDb) -> TruthAssignment {
        let g = PositiveGraph::new(db);
        let num_sources = g.num_sources();
        let mut trust = vec![1.0f64; num_sources];
        // Initial beliefs from uniform trust.
        let mut belief: Vec<f64> = (0..g.num_facts())
            .map(|i| invested_sum(&g, db, i, &trust).powf(self.growth))
            .collect();
        normalize_max(&mut belief);

        for _ in 0..self.iterations {
            // Trust update: each source reclaims its share of its claims'
            // beliefs.
            let mut new_trust = vec![0.0f64; num_sources];
            for s in db.source_ids() {
                let degree = g.source_degree(s) as f64;
                if degree == 0.0 {
                    continue;
                }
                let stake = trust[s.index()] / degree;
                let mut total = 0.0;
                for &f in g.facts_of(s) {
                    let pool: f64 = g
                        .sources_of(f)
                        .iter()
                        .map(|&s2| trust[s2.index()] / g.source_degree(s2).max(1) as f64)
                        .sum();
                    if pool > 0.0 {
                        total += belief[f.index()] * stake / pool;
                    }
                }
                new_trust[s.index()] = total;
            }
            normalize_max(&mut new_trust);
            trust = new_trust;

            // Belief update with non-linear growth.
            #[allow(clippy::needless_range_loop)] // index feeds invested_sum
            for i in 0..belief.len() {
                belief[i] = invested_sum(&g, db, i, &trust).powf(self.growth);
            }
            normalize_max(&mut belief);
        }
        // Final calibration: rescale within each entity's mutual-exclusion
        // group (see the module docs).
        for e in db.entity_ids() {
            let group = db.facts_of_entity(e);
            let max = group
                .iter()
                .map(|&f| belief[f.index()])
                // analyzer: allow(forbidden-api) -- beliefs are finite sums of trust shares; no NaN can reach the fold
                .fold(0.0f64, f64::max);
            if max > 0.0 {
                for &f in group {
                    belief[f.index()] /= max;
                }
            }
        }
        TruthAssignment::new(belief)
    }
}

/// `Σ_{s ∈ S_f} T(s) / |F_s|` — the trust invested into fact index `i`.
fn invested_sum(g: &PositiveGraph, _db: &ClaimDb, i: usize, trust: &[f64]) -> f64 {
    g.sources_of(ltm_model::FactId::from_usize(i))
        .iter()
        .map(|&s| trust[s.index()] / g.source_degree(s).max(1) as f64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::fixtures::{fact_id, table1};

    #[test]
    fn support_ordering_preserved() {
        let (raw, db) = table1();
        let t = Investment::default().infer(&db);
        let daniel = t.prob(fact_id(&raw, &db, "Harry Potter", "Daniel Radcliffe"));
        let emma = t.prob(fact_id(&raw, &db, "Harry Potter", "Emma Watson"));
        assert!(daniel >= emma);
        assert!(
            (daniel - 1.0).abs() < 1e-9,
            "top fact is max-normalised to 1"
        );
    }

    #[test]
    fn per_entity_calibration_keeps_singletons() {
        // Pirates 4's only fact is the best-funded claim of its entity, so
        // calibration pins it to 1 — the over-optimism the paper reports.
        let (raw, db) = table1();
        let t = Investment::default().infer(&db);
        let pirates = t.prob(fact_id(&raw, &db, "Pirates 4", "Johnny Depp"));
        assert_eq!(pirates, 1.0, "pirates = {pirates}");
    }

    #[test]
    fn deterministic_and_bounded() {
        let (_, db) = table1();
        let m = Investment::default();
        let a = m.infer(&db);
        assert_eq!(a, m.infer(&db));
        for f in db.fact_ids() {
            assert!((0.0..=1.0).contains(&a.prob(f)));
        }
    }

    #[test]
    fn growth_exponent_sharpens() {
        let (raw, db) = table1();
        let mild = Investment {
            growth: 1.0,
            ..Default::default()
        }
        .infer(&db);
        let sharp = Investment {
            growth: 2.0,
            ..Default::default()
        }
        .infer(&db);
        // Within the Harry Potter group, stronger growth widens the gap
        // between the best-funded fact and a weakly-funded sibling.
        let rupert = fact_id(&raw, &db, "Harry Potter", "Rupert Grint");
        assert!(sharp.prob(rupert) <= mild.prob(rupert) + 1e-9);
    }
}
