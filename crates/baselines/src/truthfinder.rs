//! TruthFinder (Yin, Han & Yu, KDD 2007) — the first joint
//! truth/source-quality iteration.
//!
//! TruthFinder models source trustworthiness `t(s)` as the average
//! confidence of the facts it asserts, and fact confidence as the
//! probability that *at least one* of its asserting sources is correct:
//!
//! ```text
//! τ(s)  = −ln(1 − t(s))                    (trustworthiness score)
//! σ*(f) = Σ_{s ∈ S_f⁺} τ(s)                (combined evidence)
//! s(f)  = 1 / (1 + e^{−γ σ*(f)})           (confidence, dampened by γ)
//! t(s)  = mean_{f ∈ F_s⁺} s(f)
//! ```
//!
//! Only positive claims participate. The dampening factor `γ = 0.3` and
//! initial trust `0.9` are the authors' recommended settings; the
//! inter-fact similarity term ("implication") is not applicable here
//! because the workspace integrates one segmented attribute type at a
//! time, matching how the LTM paper ran it.
//!
//! The LTM paper's diagnosis (§6.2.1): because `s(f)` estimates "at least
//! one positive source is right", TruthFinder is discriminative for
//! picking the single best value but over-optimistic when several values
//! may be true — on the claim table its scores cluster near 1 and its
//! false-positive rate reaches 1.0 at threshold 0.5.

use ltm_model::{ClaimDb, TruthAssignment};

use crate::graph::PositiveGraph;
use crate::method::TruthMethod;

/// TruthFinder with the standard dampened-sigmoid update.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruthFinder {
    /// Dampening factor γ applied to the combined evidence.
    pub gamma: f64,
    /// Initial source trustworthiness.
    pub initial_trust: f64,
    /// Maximum iterations.
    pub max_iterations: usize,
    /// Convergence tolerance on the max trust change.
    pub tolerance: f64,
}

impl Default for TruthFinder {
    fn default() -> Self {
        Self {
            gamma: 0.3,
            initial_trust: 0.9,
            max_iterations: 100,
            tolerance: 1e-6,
        }
    }
}

impl TruthMethod for TruthFinder {
    fn name(&self) -> &'static str {
        "TruthFinder"
    }

    fn infer(&self, db: &ClaimDb) -> TruthAssignment {
        let g = PositiveGraph::new(db);
        let mut trust = vec![self.initial_trust; g.num_sources()];
        let mut confidence = vec![0.0f64; g.num_facts()];

        for _ in 0..self.max_iterations {
            // Fact confidences from source trust.
            for f in db.fact_ids() {
                let sigma: f64 = g
                    .sources_of(f)
                    .iter()
                    // Clamp keeps τ finite when a source reaches trust 1.
                    .map(|&s| -(1.0 - trust[s.index()].min(1.0 - 1e-12)).ln())
                    .sum();
                confidence[f.index()] = sigmoid(self.gamma * sigma);
            }
            // Source trust from fact confidences.
            let mut max_delta = 0.0f64;
            for s in db.source_ids() {
                let facts = g.facts_of(s);
                if facts.is_empty() {
                    continue;
                }
                let new: f64 =
                    facts.iter().map(|&f| confidence[f.index()]).sum::<f64>() / facts.len() as f64;
                max_delta = max_delta.max((new - trust[s.index()]).abs());
                trust[s.index()] = new;
            }
            if max_delta < self.tolerance {
                break;
            }
        }
        TruthAssignment::new(confidence)
    }
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::fixtures::{fact_id, table1};

    #[test]
    fn more_support_means_higher_confidence() {
        let (raw, db) = table1();
        let t = TruthFinder::default().infer(&db);
        let daniel = t.prob(fact_id(&raw, &db, "Harry Potter", "Daniel Radcliffe"));
        let emma = t.prob(fact_id(&raw, &db, "Harry Potter", "Emma Watson"));
        let rupert = t.prob(fact_id(&raw, &db, "Harry Potter", "Rupert Grint"));
        assert!(daniel > emma, "3 sources beat 2");
        assert!(emma > rupert, "2 sources beat 1");
    }

    #[test]
    fn scores_are_overly_optimistic() {
        // The paper's finding: every asserted fact scores above 0.5 — the
        // negative evidence is invisible to TruthFinder.
        let (_, db) = table1();
        let t = TruthFinder::default().infer(&db);
        for f in db.fact_ids() {
            assert!(
                t.prob(f) > 0.5,
                "fact {f} scored {} — TruthFinder never rejects an asserted fact",
                t.prob(f)
            );
        }
    }

    #[test]
    fn converges_and_is_deterministic() {
        let (_, db) = table1();
        let m = TruthFinder::default();
        assert_eq!(m.infer(&db), m.infer(&db));
    }

    #[test]
    fn unasserted_fact_scores_half() {
        // A fact with no positive sources gets σ* = 0 → sigmoid(0) = 0.5.
        use ltm_model::{AttrId, Claim, EntityId, Fact, FactId, SourceId};
        let facts = vec![
            Fact {
                entity: EntityId::new(0),
                attr: AttrId::new(0),
            },
            Fact {
                entity: EntityId::new(0),
                attr: AttrId::new(1),
            },
        ];
        let claims = vec![
            Claim {
                fact: FactId::new(0),
                source: SourceId::new(0),
                observation: true,
            },
            Claim {
                fact: FactId::new(1),
                source: SourceId::new(0),
                observation: false,
            },
        ];
        let db = ClaimDb::from_parts(facts, claims, 1);
        let t = TruthFinder::default().infer(&db);
        assert_eq!(t.prob(FactId::new(1)), 0.5);
    }

    #[test]
    fn gamma_dampens_confidence() {
        let (raw, db) = table1();
        let low = TruthFinder {
            gamma: 0.1,
            ..Default::default()
        }
        .infer(&db);
        let high = TruthFinder {
            gamma: 1.0,
            ..Default::default()
        }
        .infer(&db);
        let f = fact_id(&raw, &db, "Harry Potter", "Daniel Radcliffe");
        assert!(low.prob(f) < high.prob(f));
    }
}
