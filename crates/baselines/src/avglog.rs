//! Average·Log fact-finder (Pasternack & Roth, COLING 2010).
//!
//! A compromise between summing a source's claim beliefs (which over-
//! rewards prolific sources) and averaging them (which ignores breadth):
//!
//! ```text
//! T_i(s) = log(|F_s|) · avg_{f ∈ F_s} B_{i−1}(f)
//! B_i(f) = Σ_{s ∈ S_f} T_i(s)
//! ```
//!
//! over positive claims, with per-round max-normalisation and uniform
//! initial beliefs. Note `log(1) = 0`: single-claim sources carry no
//! weight, which is part of why the method is so conservative on the
//! paper's datasets (recall 0.169 / 0.025 in Table 7).

use ltm_model::{ClaimDb, TruthAssignment};

use crate::graph::{normalize_max, PositiveGraph};
use crate::method::TruthMethod;

/// Average·Log iterations over positive claims.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AvgLog {
    /// Number of trust/belief rounds.
    pub iterations: usize,
}

impl Default for AvgLog {
    fn default() -> Self {
        Self { iterations: 100 }
    }
}

impl TruthMethod for AvgLog {
    fn name(&self) -> &'static str {
        "AvgLog"
    }

    fn infer(&self, db: &ClaimDb) -> TruthAssignment {
        let g = PositiveGraph::new(db);
        let mut belief = vec![1.0f64; g.num_facts()];
        let mut trust = vec![0.0f64; g.num_sources()];

        for _ in 0..self.iterations {
            for s in db.source_ids() {
                let facts = g.facts_of(s);
                trust[s.index()] = if facts.is_empty() {
                    0.0
                } else {
                    let avg =
                        facts.iter().map(|&f| belief[f.index()]).sum::<f64>() / facts.len() as f64;
                    (facts.len() as f64).ln() * avg
                };
            }
            normalize_max(&mut trust);
            for f in db.fact_ids() {
                belief[f.index()] = g
                    .sources_of(f)
                    .iter()
                    .map(|&s| trust[s.index()])
                    .sum::<f64>();
            }
            normalize_max(&mut belief);
        }
        TruthAssignment::new(belief)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::fixtures::{fact_id, table1};

    #[test]
    fn multi_claim_sources_dominate() {
        let (raw, db) = table1();
        let t = AvgLog::default().infer(&db);
        // Facts supported by the 3-claim sources (IMDB, BadSource) outrank
        // the fact supported only by single-claim Hulu.
        let daniel = t.prob(fact_id(&raw, &db, "Harry Potter", "Daniel Radcliffe"));
        let pirates = t.prob(fact_id(&raw, &db, "Pirates 4", "Johnny Depp"));
        assert!(daniel > pirates);
        // Single-claim source has log(1) = 0 trust → its fact scores 0.
        assert_eq!(pirates, 0.0);
    }

    #[test]
    fn support_ordering_preserved() {
        // AvgLog's conservativeness (Table 7: precision 1, recall 0.17)
        // emerges at dataset scale; on the tiny Table 1 fixture we check
        // the ranking it induces instead.
        let (raw, db) = table1();
        let t = AvgLog::default().infer(&db);
        let daniel = t.prob(fact_id(&raw, &db, "Harry Potter", "Daniel Radcliffe"));
        let emma = t.prob(fact_id(&raw, &db, "Harry Potter", "Emma Watson"));
        let rupert = t.prob(fact_id(&raw, &db, "Harry Potter", "Rupert Grint"));
        assert!(daniel >= emma && emma >= rupert);
        assert!((daniel - 1.0).abs() < 1e-12, "top fact max-normalised to 1");
    }

    #[test]
    fn deterministic_and_bounded() {
        let (_, db) = table1();
        let m = AvgLog::default();
        let a = m.infer(&db);
        assert_eq!(a, m.infer(&db));
        for f in db.fact_ids() {
            assert!((0.0..=1.0).contains(&a.prob(f)));
        }
    }

    #[test]
    fn empty_database() {
        let db = ClaimDb::from_parts(vec![], vec![], 0);
        assert!(AvgLog::default().infer(&db).is_empty());
    }
}
