//! 3-Estimates (Galland, Abiteboul, Marian & Senellart, WSDM 2010).
//!
//! The strongest pre-LTM baseline in the paper's comparison and, like LTM,
//! a consumer of **negative claims**. It maintains three coupled estimate
//! vectors:
//!
//! * `θ_f` — probability fact `f` is true;
//! * `ε_s` — error rate of source `s` (one scalar: the "accuracy"-style
//!   quality whose limitation Section 3.3 of the LTM paper dissects);
//! * `δ_f` — difficulty of fact `f`: sources are likelier to err on hard
//!   facts, so an error on an easy fact costs more reputation than one on
//!   a hard fact ("sources would not gain too much credit from records
//!   that are fairly easy to integrate").
//!
//! A source claiming `o_{sf} ∈ {0, 1}` about `f` is wrong with probability
//! `ε_s · δ_f`. The fixed-point updates are:
//!
//! ```text
//! θ_f = avg_s [ o_{sf} (1 − ε_s δ_f) + (1 − o_{sf}) ε_s δ_f ]
//! w_{sf} = o_{sf} (1 − θ_f) + (1 − o_{sf}) θ_f         (posterior wrongness)
//! ε_s = avg_{f ∈ claims(s)} w_{sf} / δ_f
//! δ_f = avg_{s ∈ claims(f)} w_{sf} / ε_s
//! ```
//!
//! Initialisation is `θ` = vote fraction, `δ` = 1, and the iteration order
//! (ε, δ, θ) follows the original. Crucially, Galland et al. **min–max
//! normalise** the `ε` and `δ` vectors after each update ("estimates may
//! leave the unit interval; we normalize after each step"): without it,
//! mutual reinforcement drives both to 1, at which point
//! `θ = fraction of negative claims` and the method's scores invert. The
//! normalisation maps each vector affinely onto `[floor, 1 − floor]`,
//! preserving the ranking while pinning the scale.

use ltm_model::{ClaimDb, TruthAssignment};

use crate::method::TruthMethod;
use crate::voting::Voting;

/// The 3-Estimates fixed-point solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThreeEstimates {
    /// Number of (ε, δ, θ) rounds.
    pub iterations: usize,
    /// Floor for source error (avoids division blow-ups for near-perfect
    /// sources).
    pub epsilon_floor: f64,
    /// Floor for fact difficulty.
    pub delta_floor: f64,
}

impl Default for ThreeEstimates {
    fn default() -> Self {
        Self {
            iterations: 100,
            epsilon_floor: 1e-3,
            delta_floor: 1e-3,
        }
    }
}

impl TruthMethod for ThreeEstimates {
    fn name(&self) -> &'static str {
        "3-Estimates"
    }

    fn infer(&self, db: &ClaimDb) -> TruthAssignment {
        let num_facts = db.num_facts();
        let num_sources = db.num_sources();

        // θ initialised from votes, δ = 1, ε derived in the first round.
        let mut theta: Vec<f64> = Voting.infer(db).probs().to_vec();
        let mut delta = vec![1.0f64; num_facts];
        let mut epsilon = vec![0.5f64; num_sources];

        // Per-source claim lists in fact-major order are already available
        // through the CSR; iterate claims fact-major and scatter into
        // accumulators each round.
        let mut eps_sum = vec![0.0f64; num_sources];
        let mut eps_cnt = vec![0u32; num_sources];

        for _ in 0..self.iterations {
            // ε update (raw, then min–max normalised).
            eps_sum.iter_mut().for_each(|x| *x = 0.0);
            eps_cnt.iter_mut().for_each(|x| *x = 0);
            for f in db.fact_ids() {
                let t = theta[f.index()];
                let d = delta[f.index()].max(self.delta_floor);
                for (s, o) in db.claims_of_fact(f) {
                    let wrongness = if o { 1.0 - t } else { t };
                    eps_sum[s.index()] += wrongness / d;
                    eps_cnt[s.index()] += 1;
                }
            }
            for s in 0..num_sources {
                if eps_cnt[s] > 0 {
                    epsilon[s] = eps_sum[s] / eps_cnt[s] as f64;
                }
            }
            minmax_normalize(&mut epsilon, self.epsilon_floor);

            // δ update (raw, then min–max normalised).
            for f in db.fact_ids() {
                let t = theta[f.index()];
                let mut sum = 0.0;
                let mut cnt = 0u32;
                for (s, o) in db.claims_of_fact(f) {
                    let wrongness = if o { 1.0 - t } else { t };
                    sum += wrongness / epsilon[s.index()].max(self.epsilon_floor);
                    cnt += 1;
                }
                if cnt > 0 {
                    delta[f.index()] = sum / cnt as f64;
                }
            }
            minmax_normalize(&mut delta, self.delta_floor);

            // θ update.
            for f in db.fact_ids() {
                let d = delta[f.index()];
                let mut sum = 0.0;
                let mut cnt = 0u32;
                for (s, o) in db.claims_of_fact(f) {
                    let err = (epsilon[s.index()] * d).min(1.0);
                    sum += if o { 1.0 - err } else { err };
                    cnt += 1;
                }
                if cnt > 0 {
                    theta[f.index()] = (sum / cnt as f64).clamp(0.0, 1.0);
                }
            }
        }
        TruthAssignment::new(theta)
    }
}

/// Affinely rescales `v` onto `[floor, 1 − floor]`. A constant vector is
/// mapped to 0.5 (no ranking information to preserve).
fn minmax_normalize(v: &mut [f64], floor: f64) {
    if v.is_empty() {
        return;
    }
    let min = v.iter().copied().fold(f64::INFINITY, f64::min);
    // analyzer: allow(forbidden-api) -- estimates are clamped to [floor, 1] before every renormalisation; no NaN can reach the fold
    let max = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if max - min < 1e-12 {
        for x in v {
            *x = 0.5;
        }
        return;
    }
    let span = 1.0 - 2.0 * floor;
    for x in v {
        *x = floor + span * (*x - min) / (max - min);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::fixtures::{fact_id, table1};

    #[test]
    fn uses_negative_claims() {
        let (raw, db) = table1();
        let t = ThreeEstimates::default().infer(&db);
        // Unanimous positive (Daniel) must outrank 1-of-3 positive (Depp).
        let daniel = t.prob(fact_id(&raw, &db, "Harry Potter", "Daniel Radcliffe"));
        let depp = t.prob(fact_id(&raw, &db, "Harry Potter", "Johnny Depp"));
        assert!(daniel > depp);
        // The unanimous fact should be called true, the 1-of-3 facts not
        // confidently true.
        assert!(daniel > 0.9);
    }

    #[test]
    fn singleton_positive_is_trusted() {
        // Pirates 4: one positive claim, no dissent → stays high.
        let (raw, db) = table1();
        let t = ThreeEstimates::default().infer(&db);
        assert!(t.prob(fact_id(&raw, &db, "Pirates 4", "Johnny Depp")) > 0.5);
    }

    #[test]
    fn deterministic_and_bounded() {
        let (_, db) = table1();
        let m = ThreeEstimates::default();
        let a = m.infer(&db);
        assert_eq!(a, m.infer(&db));
        for f in db.fact_ids() {
            assert!((0.0..=1.0).contains(&a.prob(f)));
        }
    }

    #[test]
    fn reliable_source_gains_low_error() {
        // Build a dataset where source 0 always agrees with the (vote)
        // consensus and source 1 always disagrees; ε must separate them.
        use ltm_model::{AttrId, Claim, EntityId, Fact, FactId, SourceId};
        let mut facts = Vec::new();
        let mut claims = Vec::new();
        for i in 0..8u32 {
            facts.push(Fact {
                entity: EntityId::new(i),
                attr: AttrId::new(i),
            });
            for s in 0..4u32 {
                claims.push(Claim {
                    fact: FactId::new(i),
                    source: SourceId::new(s),
                    // Sources 0, 2, 3 say true; source 1 says false.
                    observation: s != 1,
                });
            }
        }
        let db = ClaimDb::from_parts(facts, claims, 4);
        let m = ThreeEstimates::default();
        // Recompute internals by running inference and checking the
        // observable consequence: facts are called true despite source 1.
        let t = m.infer(&db);
        for f in db.fact_ids() {
            assert!(t.prob(f) > 0.5);
        }
    }

    #[test]
    fn zero_iterations_returns_votes() {
        let (_, db) = table1();
        let t = ThreeEstimates {
            iterations: 0,
            ..Default::default()
        }
        .infer(&db);
        assert_eq!(t, Voting.infer(&db));
    }
}
