//! Hubs and Authorities (HITS) on the source–fact bipartite graph
//! (Kleinberg 1999; applied to fact-finding by Pasternack & Roth).
//!
//! Sources are hubs, facts are authorities; edges are positive claims:
//!
//! ```text
//! auth(f) = Σ_{s → f} hub(s)
//! hub(s)  = Σ_{f ← s} auth(f)
//! ```
//!
//! with per-round max-normalisation. The final authority vector,
//! normalised to `[0, 1]`, is the truth score. As the LTM paper observes
//! (§6.2.1), this tends to be conservative: facts asserted by few or
//! low-degree sources receive scores far below the hub-dominating facts.

use ltm_model::{ClaimDb, TruthAssignment};

use crate::graph::{normalize_max, PositiveGraph};
use crate::method::TruthMethod;

/// HITS over positive claims.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HubAuthority {
    /// Number of hub/authority rounds.
    pub iterations: usize,
}

impl Default for HubAuthority {
    fn default() -> Self {
        Self { iterations: 100 }
    }
}

impl TruthMethod for HubAuthority {
    fn name(&self) -> &'static str {
        "HubAuthority"
    }

    fn infer(&self, db: &ClaimDb) -> TruthAssignment {
        let g = PositiveGraph::new(db);
        let mut hub = vec![1.0f64; g.num_sources()];
        let mut auth = vec![0.0f64; g.num_facts()];

        for _ in 0..self.iterations {
            for f in db.fact_ids() {
                auth[f.index()] = g.sources_of(f).iter().map(|&s| hub[s.index()]).sum::<f64>();
            }
            normalize_max(&mut auth);
            for s in db.source_ids() {
                hub[s.index()] = g.facts_of(s).iter().map(|&f| auth[f.index()]).sum::<f64>();
            }
            normalize_max(&mut hub);
        }
        TruthAssignment::new(auth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::fixtures::{fact_id, table1};

    #[test]
    fn authority_ranks_by_support() {
        let (raw, db) = table1();
        let t = HubAuthority::default().infer(&db);
        let daniel = t.prob(fact_id(&raw, &db, "Harry Potter", "Daniel Radcliffe"));
        let emma = t.prob(fact_id(&raw, &db, "Harry Potter", "Emma Watson"));
        let rupert = t.prob(fact_id(&raw, &db, "Harry Potter", "Rupert Grint"));
        assert!(daniel >= emma && emma >= rupert);
        // Max-normalised: the best fact scores exactly 1.
        assert!((daniel - 1.0).abs() < 1e-12);
    }

    #[test]
    fn conservative_on_weakly_supported_facts() {
        // Pirates 4 is supported only by Hulu, whose hub weight is tiny —
        // HITS gives it a low score even though nobody contradicts it (the
        // low-recall failure mode the paper reports for HubAuthority).
        let (raw, db) = table1();
        let t = HubAuthority::default().infer(&db);
        let pirates = t.prob(fact_id(&raw, &db, "Pirates 4", "Johnny Depp"));
        assert!(pirates < 0.5, "pirates scored {pirates}");
    }

    #[test]
    fn deterministic_and_bounded() {
        let (_, db) = table1();
        let m = HubAuthority::default();
        let a = m.infer(&db);
        assert_eq!(a, m.infer(&db));
        for f in db.fact_ids() {
            assert!((0.0..=1.0).contains(&a.prob(f)));
        }
    }

    #[test]
    fn zero_iterations_yields_zero_scores() {
        let (_, db) = table1();
        let t = HubAuthority { iterations: 0 }.infer(&db);
        for f in db.fact_ids() {
            assert_eq!(t.prob(f), 0.0);
        }
    }
}
