//! The common interface implemented by every truth-finding method.

use ltm_model::{ClaimDb, SourceId, TruthAssignment};

/// A truth-finding method: consumes a claim database, produces a score in
/// `[0, 1]` per fact ("the probability for each fact indicating how likely
/// it is to be true", paper §6.2.1).
///
/// Implementations must be deterministic for a given input (the iterative
/// baselines all have deterministic fixed-point updates; only LTM itself
/// is stochastic, and it is seeded).
pub trait TruthMethod {
    /// Display name as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// Scores every fact of `db`.
    fn infer(&self, db: &ClaimDb) -> TruthAssignment;
}

/// Derives a per-source trust vector from a method's own fitted scores:
/// each source's trust is the mean agreement of its claims with the
/// assignment — `score(f)` for a positive claim on fact `f`, `1 −
/// score(f)` for a negative one. Sources with no claims get the
/// uninformed 0.5.
///
/// This gives every [`TruthMethod`] a uniform way to weigh an *ad-hoc*
/// claim set (the serving layer's shadow-query path) without exposing
/// each method's internal trust iterate: a source that mostly agrees
/// with what the method concluded is trusted, one that mostly disagrees
/// is not. Always in `[0, 1]` when the scores are.
pub fn source_agreement_trust(db: &ClaimDb, scores: &TruthAssignment) -> Vec<f64> {
    (0..db.num_sources())
        .map(|k| {
            let s = SourceId::from_usize(k);
            let claims = db.claims_of_source(s);
            if claims.is_empty() {
                return 0.5;
            }
            let agree: f64 = claims
                .iter()
                .map(|&c| {
                    let p = scores.prob(db.claim_fact(c));
                    if db.claim_observation(c) {
                        p
                    } else {
                        1.0 - p
                    }
                })
                .sum();
            agree / claims.len() as f64
        })
        .collect()
}

/// Shared test fixtures for the baseline implementations.
#[cfg(test)]
pub(crate) mod fixtures {
    use ltm_model::{ClaimDb, RawDatabase, RawDatabaseBuilder};

    /// Paper Table 1.
    pub fn table1() -> (RawDatabase, ClaimDb) {
        let mut b = RawDatabaseBuilder::new();
        b.add("Harry Potter", "Daniel Radcliffe", "IMDB");
        b.add("Harry Potter", "Emma Watson", "IMDB");
        b.add("Harry Potter", "Rupert Grint", "IMDB");
        b.add("Harry Potter", "Daniel Radcliffe", "Netflix");
        b.add("Harry Potter", "Daniel Radcliffe", "BadSource.com");
        b.add("Harry Potter", "Emma Watson", "BadSource.com");
        b.add("Harry Potter", "Johnny Depp", "BadSource.com");
        b.add("Pirates 4", "Johnny Depp", "Hulu.com");
        let raw = b.build();
        let db = ClaimDb::from_raw(&raw);
        (raw, db)
    }

    /// Finds the fact id for an (entity, attribute) name pair.
    pub fn fact_id(raw: &RawDatabase, db: &ClaimDb, entity: &str, attr: &str) -> ltm_model::FactId {
        let e = raw.entity_id(entity).expect("entity exists");
        let a = raw.attr_id(attr).expect("attr exists");
        db.fact_ids()
            .find(|&f| db.fact(f).entity == e && db.fact(f).attr == a)
            .expect("fact exists")
    }
}
