//! The positive-claim bipartite graph shared by the link-analysis
//! baselines.
//!
//! TruthFinder, HITS, AvgLog, Investment, and PooledInvestment all operate
//! on the bipartite graph whose edges are *positive* claims: source `s` —
//! fact `f` whenever `s` asserted `f`. This helper materialises both
//! adjacency directions once so the iterative methods stay O(edges) per
//! round.

use ltm_model::{ClaimDb, FactId, SourceId};

/// Bipartite adjacency over positive claims.
#[derive(Debug, Clone)]
pub struct PositiveGraph {
    /// `facts_of[s]` — facts positively asserted by source `s`.
    facts_of: Vec<Vec<FactId>>,
    /// `sources_of[f]` — sources positively asserting fact `f`.
    sources_of: Vec<Vec<SourceId>>,
    num_edges: usize,
}

impl PositiveGraph {
    /// Builds the graph from a claim database.
    pub fn new(db: &ClaimDb) -> Self {
        let mut facts_of = vec![Vec::new(); db.num_sources()];
        let mut sources_of = vec![Vec::new(); db.num_facts()];
        let mut num_edges = 0;
        for f in db.fact_ids() {
            for (s, o) in db.claims_of_fact(f) {
                if o {
                    facts_of[s.index()].push(f);
                    sources_of[f.index()].push(s);
                    num_edges += 1;
                }
            }
        }
        Self {
            facts_of,
            sources_of,
            num_edges,
        }
    }

    /// Facts positively asserted by `s`.
    #[inline]
    pub fn facts_of(&self, s: SourceId) -> &[FactId] {
        &self.facts_of[s.index()]
    }

    /// Sources positively asserting `f`.
    #[inline]
    pub fn sources_of(&self, f: FactId) -> &[SourceId] {
        &self.sources_of[f.index()]
    }

    /// Out-degree of source `s` (`|F_s|` in the Pasternack–Roth notation).
    #[inline]
    pub fn source_degree(&self, s: SourceId) -> usize {
        self.facts_of[s.index()].len()
    }

    /// Number of sources in the id space.
    pub fn num_sources(&self) -> usize {
        self.facts_of.len()
    }

    /// Number of facts in the id space.
    pub fn num_facts(&self) -> usize {
        self.sources_of.len()
    }

    /// Number of positive claims (edges).
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }
}

/// Normalises a score vector by its maximum so the largest entry is 1;
/// leaves an all-zero vector unchanged. Shared by the iterative baselines,
/// which renormalise every round to avoid numeric blow-up, as
/// Pasternack & Roth prescribe.
pub(crate) fn normalize_max(v: &mut [f64]) {
    // analyzer: allow(forbidden-api) -- belief scores are finite products of trust values; no NaN can reach the fold
    let max = v.iter().copied().fold(0.0f64, f64::max);
    if max > 0.0 {
        for x in v {
            *x /= max;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::fixtures::table1;

    #[test]
    fn graph_matches_positive_claims() {
        let (_, db) = table1();
        let g = PositiveGraph::new(&db);
        assert_eq!(g.num_edges(), db.num_positive_claims());
        assert_eq!(g.num_facts(), db.num_facts());
        assert_eq!(g.num_sources(), db.num_sources());
        // Cross-check both directions agree edge by edge.
        let mut forward = 0;
        for s in db.source_ids() {
            for &f in g.facts_of(s) {
                assert!(g.sources_of(f).contains(&s));
                forward += 1;
            }
        }
        assert_eq!(forward, g.num_edges());
    }

    #[test]
    fn degrees_match_table1() {
        let (raw, db) = table1();
        let g = PositiveGraph::new(&db);
        let sid = |n: &str| raw.source_id(n).unwrap();
        assert_eq!(g.source_degree(sid("IMDB")), 3);
        assert_eq!(g.source_degree(sid("Netflix")), 1);
        assert_eq!(g.source_degree(sid("BadSource.com")), 3);
        assert_eq!(g.source_degree(sid("Hulu.com")), 1);
    }

    #[test]
    fn normalize_max_scales_and_handles_zero() {
        let mut v = vec![2.0, 4.0, 1.0];
        normalize_max(&mut v);
        assert_eq!(v, vec![0.5, 1.0, 0.25]);
        let mut z = vec![0.0, 0.0];
        normalize_max(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }
}
